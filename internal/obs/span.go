package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one trace through the serving pipeline. IDs are minted
// at frame accept (Tracer.Accept) and carried with the message through
// every stage, so a histogram exemplar, a /spans entry, and a log line can
// all name the same decision. The zero ID means "untraced". JSON renders
// the ID as a fixed-width hex string — the form exemplar labels use.
type SpanID uint64

// String renders the ID the way exemplars and /spans expose it.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the hex form.
func (id SpanID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts the hex form.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return fmt.Errorf("obs: bad span id %q", s)
	}
	*id = SpanID(v)
	return nil
}

// ParseSpanID parses the hex form (with or without leading zeros); it also
// accepts plain decimal for operator convenience. Returns 0 on garbage.
func ParseSpanID(s string) SpanID {
	if v, err := strconv.ParseUint(s, 16, 64); err == nil {
		return SpanID(v)
	}
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return SpanID(v)
	}
	return 0
}

// StageDurations decomposes one message's accept→verdict wall time into
// the pipeline stages it passed through. Each field is a wall-clock
// timeline segment, not an amortized cost share: while a batch's shared
// signature-tree section runs, every message in the batch is waiting on
// it, so the whole section is on each message's critical path. The named
// stages of a fully sampled decision span therefore sum to (within
// scheduler noise) the span's TotalNS.
//
// Zero fields marshal away: a synchronous HandleMessage span has no
// decode/queue/batch stages, a checkpoint span only its checkpoint stage.
type StageDurations struct {
	// DecodeNS is syslog parse time on the listener goroutine.
	DecodeNS int64 `json:"decode_ns,omitempty"`
	// QueueNS is time from accept to the scoring shard holding the
	// message under its mutex: shard-queue wait plus lock acquisition
	// (on the synchronous path, just the lock wait).
	QueueNS int64 `json:"queue_ns,omitempty"`
	// SigtreeNS is the template match/learn section (tokenization plus
	// the shared treeMu critical section, batch-wide on the async path).
	SigtreeNS int64 `json:"sigtree_ns,omitempty"`
	// BatchNS is wave-scheduling wait: time between the batch's sigtree
	// section ending and this message's inference wave starting.
	BatchNS int64 `json:"batch_ns,omitempty"`
	// ScoreNS is LSTM inference (this message's wave on the async path).
	ScoreNS int64 `json:"score_ns,omitempty"`
	// VerdictNS is threshold evaluation, anomaly clustering, warning
	// emission, and trace/span recording.
	VerdictNS int64 `json:"verdict_ns,omitempty"`
	// CheckpointNS is snapshot+encode time (checkpoint spans only).
	CheckpointNS int64 `json:"checkpoint_ns,omitempty"`
}

// Sum adds the recorded stages.
func (s StageDurations) Sum() int64 {
	return s.DecodeNS + s.QueueNS + s.SigtreeNS + s.BatchNS + s.ScoreNS + s.VerdictNS + s.CheckpointNS
}

// Span kinds. Decision spans trace one message accept→verdict; checkpoint
// and adaptation spans trace the long-running maintenance operations that
// share the serving locks, so a latency tail can be attributed to them.
const (
	KindDecision   = "decision"
	KindCheckpoint = "checkpoint"
	KindAdaptation = "adaptation"
)

// Span is one traced operation. For decision spans the stage fields
// decompose the accept→verdict latency; a span recorded only because the
// verdict emitted a warning (always-sample-on-warning, see Tracer) carries
// Sampled=false and its total but no stage breakdown — the stage clocks
// were never started for it.
type Span struct {
	// Seq is a monotonically increasing ring sequence (1-based), stamped
	// at Add, so operators can spot eviction between polls.
	Seq     uint64 `json:"seq"`
	TraceID SpanID `json:"trace_id"`
	Kind    string `json:"kind"`
	// Time is the wall-clock accept time (operation start for
	// checkpoint/adaptation spans).
	Time time.Time `json:"time"`
	// Host names the vPE (decision spans).
	Host string `json:"host,omitempty"`
	// Template/Score/Anomalous/Warning describe the verdict; Warning
	// marks spans whose verdict tipped an anomaly cluster into an
	// emitted warning signature.
	Template  int     `json:"template,omitempty"`
	Score     float64 `json:"score,omitempty"`
	Anomalous bool    `json:"anomalous,omitempty"`
	Warning   bool    `json:"warning,omitempty"`
	// Sampled marks spans with a full stage breakdown.
	Sampled bool `json:"sampled"`
	// TotalNS is the end-to-end wall time (accept→verdict for decisions).
	TotalNS int64          `json:"total_ns"`
	Stages  StageDurations `json:"stages"`
}

// SpanRing is a fixed-capacity ring of spans, the storage behind /spans:
// cheap to append, bounded in memory, queryable newest-first. A nil
// SpanRing drops every Add.
type SpanRing struct {
	mu   sync.Mutex
	buf  []Span
	next uint64
}

// NewSpanRing returns a ring holding the last n spans (n >= 1).
func NewSpanRing(n int) *SpanRing {
	if n < 1 {
		n = 1
	}
	return &SpanRing{buf: make([]Span, n)}
}

// Add appends one span, stamping its sequence number.
func (r *SpanRing) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.next++
	s.Seq = r.next
	r.buf[(r.next-1)%uint64(len(r.buf))] = s
	r.mu.Unlock()
}

// Total returns how many spans were ever added (including evicted ones).
func (r *SpanRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// SpanQuery filters a SpanRing read. The zero query matches everything.
type SpanQuery struct {
	// N caps the result count (<= 0: everything retained).
	N int
	// Host, when non-empty, matches decision spans for one vPE.
	Host string
	// WarningsOnly keeps only spans whose verdict emitted a warning.
	WarningsOnly bool
	// TraceID, when non-zero, matches one trace (exemplar resolution).
	TraceID SpanID
	// Kind, when non-empty, matches one span kind.
	Kind string
}

func (q SpanQuery) match(s *Span) bool {
	if q.Host != "" && s.Host != q.Host {
		return false
	}
	if q.WarningsOnly && !s.Warning {
		return false
	}
	if q.TraceID != 0 && s.TraceID != q.TraceID {
		return false
	}
	if q.Kind != "" && s.Kind != q.Kind {
		return false
	}
	return true
}

// Query returns up to q.N matching spans, newest first.
func (r *SpanRing) Query(q SpanQuery) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	have := int(r.next)
	if have > len(r.buf) {
		have = len(r.buf)
	}
	var out []Span
	for i := 0; i < have; i++ {
		s := &r.buf[(r.next-1-uint64(i))%uint64(len(r.buf))]
		if !q.match(s) {
			continue
		}
		out = append(out, *s)
		if q.N > 0 && len(out) >= q.N {
			break
		}
	}
	return out
}

// Recent returns up to n spans, newest first (n <= 0: everything).
func (r *SpanRing) Recent(n int) []Span { return r.Query(SpanQuery{N: n}) }

// Tracer mints trace IDs at frame accept and decides which messages carry
// full stage clocks: N out of every M accepted messages are sampled
// (deterministic round-robin over the accept counter, so a steady stream
// samples evenly rather than in bursts), and every warning-emitting
// verdict gets a span regardless — an unsampled warning span carries the
// total latency but no stage breakdown, because its clocks were never
// started. All methods are nil-safe: a nil Tracer mints ID 0 and samples
// nothing, so instrumented paths pay one branch when tracing is off.
type Tracer struct {
	ring *SpanRing
	n, m uint64
	base uint64
	ctr  atomic.Uint64
	// aux mints IDs for out-of-band spans (MintID); separate from ctr so
	// maintenance spans never consume a message-sampling slot.
	aux atomic.Uint64

	// spans/sampled count emissions for the tracing metric family; nil
	// (no-op) when the tracer is not exported into a registry.
	spans   *Counter
	sampled *Counter
}

// NewTracer builds a tracer emitting into ring, sampling n of every m
// accepted messages. n <= 0 samples nothing (warning spans still emit);
// m <= 1 with n >= 1 samples everything. The ring may be nil (sampling
// decisions are still made, emissions dropped) but usually is not.
func NewTracer(ring *SpanRing, n, m int) *Tracer {
	if m < 1 {
		m = 1
	}
	if n < 0 {
		n = 0
	}
	if n > m {
		n = m
	}
	// High bits distinguish processes/restarts so exemplar IDs from a
	// previous incarnation do not resolve against the wrong ring entry.
	base := uint64(time.Now().UnixNano()) << 40
	return &Tracer{ring: ring, n: uint64(n), m: uint64(m), base: base}
}

// Export registers the tracer's counters in reg.
func (t *Tracer) Export(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	t.spans = reg.Counter("trace_spans_total", "Spans emitted into the span ring.")
	t.sampled = reg.Counter("trace_sampled_total", "Accepted messages chosen for full stage-clock sampling.")
}

// Ring returns the tracer's span ring (nil on a nil tracer).
func (t *Tracer) Ring() *SpanRing {
	if t == nil {
		return nil
	}
	return t.ring
}

// Accept mints the next trace ID and reports whether this message is
// sampled (full stage clocks). It is the hot-path entry: one atomic
// increment and a modulo.
func (t *Tracer) Accept() (SpanID, bool) {
	if t == nil {
		return 0, false
	}
	c := t.ctr.Add(1)
	sampled := (c-1)%t.m < t.n
	if sampled {
		t.sampled.Inc()
	}
	return SpanID(t.base | (c & 0xffffffffff)), sampled
}

// MintID mints a trace ID for an out-of-band span — checkpoint or
// adaptation — without touching the message-sampling state: the N-in-M
// rotation keeps its phase and trace_sampled_total still counts only
// accepted messages. IDs descend from the top of the 40-bit counter
// space while Accept's ascend from the bottom, so the two sequences
// cannot collide within a process lifetime.
func (t *Tracer) MintID() SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.base | (^t.aux.Add(1) & 0xffffffffff))
}

// Emit records one finished span.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	t.spans.Inc()
	t.ring.Add(s)
}
