package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAdminMuxSpansAndSLO covers the span/SLO half of the admin surface:
// /spans with its filter set (?n=, ?host=, ?warnings=1, ?trace=, ?kind=),
// the /traces filters that arrived with it, and /slo.
func TestAdminMuxSpansAndSLO(t *testing.T) {
	clk := &fakeClock{ns: int64(time.Hour)}
	spans := NewSpanRing(16)
	spans.Add(Span{TraceID: 0x10, Kind: KindDecision, Host: "vpe01", Sampled: true,
		TotalNS: 1000, Stages: StageDurations{QueueNS: 400, SigtreeNS: 300, ScoreNS: 200, VerdictNS: 100}})
	spans.Add(Span{TraceID: 0x11, Kind: KindDecision, Host: "vpe02", Warning: true, TotalNS: 900})
	spans.Add(Span{TraceID: 0x12, Kind: KindCheckpoint, Sampled: true, TotalNS: 5000,
		Stages: StageDurations{CheckpointNS: 5000}})

	traces := NewTraceRing(8)
	traces.Add(Trace{Host: "vpe01", Score: 2})
	traces.Add(Trace{Host: "vpe02", Score: 9, Warning: true})

	slos := NewSLOSet()
	lat := slos.Add(SLOConfig{Name: "accept_verdict_latency", Target: 0.99, NowNS: clk.now})
	lat.RecordN(50, 50)

	mux := NewAdminMux(AdminConfig{Traces: traces, Spans: spans, SLO: slos})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	getSpans := func(path string) (uint64, []Span) {
		t.Helper()
		code, body := get(path)
		if code != 200 {
			t.Fatalf("%s: %d\n%s", path, code, body)
		}
		var doc struct {
			Total uint64 `json:"total"`
			Spans []Span `json:"spans"`
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("%s: %v\n%s", path, err, body)
		}
		return doc.Total, doc.Spans
	}

	if total, sp := getSpans("/spans"); total != 3 || len(sp) != 3 || sp[0].TraceID != 0x12 {
		t.Fatalf("/spans = total %d, %+v", total, sp)
	}
	if _, sp := getSpans("/spans?n=1"); len(sp) != 1 || sp[0].Kind != KindCheckpoint {
		t.Fatalf("/spans?n=1 = %+v", sp)
	}
	if _, sp := getSpans("/spans?host=vpe01"); len(sp) != 1 || sp[0].TraceID != 0x10 {
		t.Fatalf("host filter = %+v", sp)
	}
	if _, sp := getSpans("/spans?warnings=1"); len(sp) != 1 || sp[0].TraceID != 0x11 {
		t.Fatalf("warnings filter = %+v", sp)
	}
	if _, sp := getSpans("/spans?kind=checkpoint"); len(sp) != 1 || sp[0].Stages.CheckpointNS != 5000 {
		t.Fatalf("kind filter = %+v", sp)
	}
	// Exemplar resolution: the hex trace ID from a /metrics exemplar label
	// resolves to its span.
	if _, sp := getSpans("/spans?trace=0000000000000010"); len(sp) != 1 || sp[0].Host != "vpe01" {
		t.Fatalf("trace filter = %+v", sp)
	}
	if code, _ := get("/spans?trace=garbage"); code != 400 {
		t.Fatalf("garbage trace should 400, got %d", code)
	}
	if code, _ := get("/spans?n=-1"); code != 400 {
		t.Fatalf("bad n should 400, got %d", code)
	}

	// /traces filters ride the same query grammar.
	code, body := get("/traces?host=vpe02&warnings=1")
	if code != 200 {
		t.Fatalf("/traces filter: %d", code)
	}
	var tdoc struct {
		Traces []Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &tdoc); err != nil {
		t.Fatal(err)
	}
	if len(tdoc.Traces) != 1 || tdoc.Traces[0].Host != "vpe02" || !tdoc.Traces[0].Warning {
		t.Fatalf("/traces filter = %+v", tdoc.Traces)
	}
	if code, body := get("/traces?warnings=0"); code != 200 || !strings.Contains(body, "vpe01") {
		t.Fatalf("warnings=0 should not filter: %d\n%s", code, body)
	}

	// /slo: the objective's multi-window evaluation, burning at ratio 0.5.
	code, body = get("/slo")
	if code != 200 {
		t.Fatalf("/slo: %d", code)
	}
	var sdoc struct {
		SLOs []SLOStatus `json:"slos"`
	}
	if err := json.Unmarshal([]byte(body), &sdoc); err != nil {
		t.Fatalf("/slo JSON: %v\n%s", err, body)
	}
	if len(sdoc.SLOs) != 1 || sdoc.SLOs[0].Name != "accept_verdict_latency" {
		t.Fatalf("/slo = %+v", sdoc.SLOs)
	}
	if !sdoc.SLOs[0].Fast.Burning || sdoc.SLOs[0].Fast.Bad != 50 {
		t.Fatalf("/slo fast window = %+v", sdoc.SLOs[0].Fast)
	}
}

// TestMetricsExemplarNegotiation pins the /metrics content negotiation:
// a plain scrape gets the 0.0.4 exposition with no exemplar suffixes
// (the 0.0.4 parser rejects mid-line '#', so one exemplar would cost the
// scrape every metric), while an Accept header naming
// application/openmetrics-text — or ?format=openmetrics — gets the
// OpenMetrics exposition with exemplars and the terminal # EOF.
func TestMetricsExemplarNegotiation(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("handle_seconds", "Handle latency.", []float64{0.1, 1})
	h.ObserveExemplar(0.5, SpanID(0xab))

	srv := httptest.NewServer(NewAdminMux(AdminConfig{Registry: reg}))
	defer srv.Close()

	get := func(accept, query string) (string, string) {
		t.Helper()
		req, err := http.NewRequest("GET", srv.URL+"/metrics"+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.Header.Get("Content-Type"), buf.String()
	}

	ct, body := get("", "")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("plain scrape content type = %q", ct)
	}
	if strings.Contains(body, `# {trace_id=`) || strings.Contains(body, "# EOF") {
		t.Fatalf("plain scrape not 0.0.4-clean:\n%s", body)
	}

	// Prometheus's exemplar-aware scrape and the curl-friendly query
	// parameter both negotiate OpenMetrics.
	for _, req := range [][2]string{
		{"application/openmetrics-text; version=1.0.0", ""},
		{"", "?format=openmetrics"},
	} {
		ct, body = get(req[0], req[1])
		if !strings.Contains(ct, "application/openmetrics-text") {
			t.Fatalf("negotiated content type = %q", ct)
		}
		if !strings.Contains(body, `# {trace_id="00000000000000ab"}`) {
			t.Fatalf("OpenMetrics scrape carries no exemplar:\n%s", body)
		}
		if !strings.HasSuffix(body, "# EOF\n") {
			t.Fatalf("OpenMetrics scrape not # EOF-terminated:\n%s", body)
		}
	}
}

// TestAdminMuxSpansAbsent pins graceful degradation: a mux built without
// span/SLO backends still serves the endpoints.
func TestAdminMuxSpansAbsent(t *testing.T) {
	srv := httptest.NewServer(NewAdminMux(AdminConfig{}))
	defer srv.Close()
	for _, path := range []string{"/spans", "/slo"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s without backend: %d", path, resp.StatusCode)
		}
	}
}
