package obs

import (
	"io"
	"testing"
	"time"
)

// The Registry benchmarks double as the `make ci` smoke run
// (-bench Registry -benchtime=1x): they prove the hot-path primitives stay
// allocation-free on both the live and the no-op (nil handle) paths. The
// hard assertion lives in TestHotPathAllocFree; these give the numbers.

func BenchmarkRegistryCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRegistryCounterIncNop(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRegistryHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", "", DurationBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkRegistryHistogramObserveNop(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkRegistryHistogramTimed(b *testing.B) {
	h := NewRegistry().Histogram("h", "", DurationBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(h.Start())
	}
}

func BenchmarkRegistryTraceRingAdd(b *testing.B) {
	ring := NewTraceRing(256)
	tr := Trace{Host: "vpe01", Score: 7, Threshold: 6, Time: time.Now()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Add(tr)
	}
}

func BenchmarkRegistryPrometheusExposition(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter("counter_"+string(rune('a'+i))+"_total", "help").Add(uint64(i))
		r.Histogram("hist_"+string(rune('a'+i)), "help", DurationBuckets()).Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.WritePrometheus(io.Discard)
	}
}
