package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

func TestSpanIDString(t *testing.T) {
	id := SpanID(0xab)
	if got := id.String(); got != "00000000000000ab" {
		t.Fatalf("String() = %q, want fixed-width hex", got)
	}
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"00000000000000ab"` {
		t.Fatalf("MarshalJSON = %s", b)
	}
	var back SpanID
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip = %v, want %v", back, id)
	}
}

func TestParseSpanID(t *testing.T) {
	if got := ParseSpanID("00000000000000ab"); got != 0xab {
		t.Fatalf("hex parse = %v", got)
	}
	if got := ParseSpanID("ab"); got != 0xab {
		t.Fatalf("short hex parse = %v", got)
	}
	// "99" is valid hex, so hex interpretation wins: 0x99.
	if got := ParseSpanID("99"); got != 0x99 {
		t.Fatalf("ambiguous parse = %v, want hex 0x99", got)
	}
	if got := ParseSpanID("not-an-id"); got != 0 {
		t.Fatalf("garbage parse = %v, want 0", got)
	}
}

func TestStageDurationsSum(t *testing.T) {
	s := StageDurations{DecodeNS: 1, QueueNS: 2, SigtreeNS: 3, BatchNS: 4, ScoreNS: 5, VerdictNS: 6, CheckpointNS: 7}
	if got := s.Sum(); got != 28 {
		t.Fatalf("Sum() = %d, want 28", got)
	}
	// Zero stages marshal away: a checkpoint span's JSON carries only its
	// checkpoint stage.
	b, err := json.Marshal(StageDurations{CheckpointNS: 9})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"checkpoint_ns":9}` {
		t.Fatalf("marshal = %s", b)
	}
}

func TestSpanRingQuery(t *testing.T) {
	r := NewSpanRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(Span{
			TraceID: SpanID(i),
			Kind:    KindDecision,
			Host:    fmt.Sprintf("vpe-%d", i%2),
			Warning: i%3 == 0,
		})
	}
	if r.Total() != 6 {
		t.Fatalf("Total = %d", r.Total())
	}
	// Capacity 4: spans 3..6 retained, newest first.
	all := r.Recent(0)
	if len(all) != 4 || all[0].TraceID != 6 || all[3].TraceID != 3 {
		t.Fatalf("Recent(0) = %+v", all)
	}
	if all[0].Seq != 6 {
		t.Fatalf("Seq = %d, want 6", all[0].Seq)
	}
	if got := r.Recent(2); len(got) != 2 || got[0].TraceID != 6 || got[1].TraceID != 5 {
		t.Fatalf("Recent(2) = %+v", got)
	}
	if got := r.Query(SpanQuery{Host: "vpe-0"}); len(got) != 2 || got[0].TraceID != 6 || got[1].TraceID != 4 {
		t.Fatalf("host query = %+v", got)
	}
	if got := r.Query(SpanQuery{WarningsOnly: true}); len(got) != 2 || got[0].TraceID != 6 || got[1].TraceID != 3 {
		t.Fatalf("warnings query = %+v", got)
	}
	if got := r.Query(SpanQuery{TraceID: 5}); len(got) != 1 || got[0].TraceID != 5 {
		t.Fatalf("trace query = %+v", got)
	}
	if got := r.Query(SpanQuery{Kind: KindCheckpoint}); len(got) != 0 {
		t.Fatalf("kind query = %+v", got)
	}
	var nilRing *SpanRing
	nilRing.Add(Span{})
	if nilRing.Total() != 0 || nilRing.Recent(1) != nil {
		t.Fatal("nil ring not inert")
	}
}

func TestTracerSampling(t *testing.T) {
	ring := NewSpanRing(32)
	reg := NewRegistry()
	tr := NewTracer(ring, 1, 4)
	tr.Export(reg)
	sampledN := 0
	ids := make(map[SpanID]bool)
	for i := 0; i < 16; i++ {
		id, sampled := tr.Accept()
		if id == 0 {
			t.Fatal("minted zero trace ID")
		}
		if ids[id] {
			t.Fatalf("duplicate trace ID %v", id)
		}
		ids[id] = true
		if sampled {
			sampledN++
		}
	}
	if sampledN != 4 {
		t.Fatalf("sampled %d of 16 at 1-in-4", sampledN)
	}
	tr.Emit(Span{TraceID: 1})
	s := reg.Snapshot()
	if s.Counters["trace_sampled_total"] != 4 || s.Counters["trace_spans_total"] != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if ring.Total() != 1 {
		t.Fatalf("ring total = %d", ring.Total())
	}

	// n=0 samples nothing but still mints IDs.
	off := NewTracer(ring, 0, 16)
	for i := 0; i < 8; i++ {
		id, sampled := off.Accept()
		if id == 0 || sampled {
			t.Fatalf("n=0: id=%v sampled=%v", id, sampled)
		}
	}

	// Nil tracer: ID 0, nothing sampled, Emit is a no-op.
	var nilT *Tracer
	if id, sampled := nilT.Accept(); id != 0 || sampled {
		t.Fatal("nil tracer minted")
	}
	nilT.Emit(Span{})
	if nilT.Ring() != nil {
		t.Fatal("nil tracer ring")
	}
}

// TestTracerMintID pins the out-of-band ID path: checkpoint/adaptation
// spans mint IDs without consuming a message-sampling slot, so the N-in-M
// rotation keeps its phase and trace_sampled_total counts only accepted
// messages.
func TestTracerMintID(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(NewSpanRing(8), 1, 4)
	tr.Export(reg)

	ids := make(map[SpanID]bool)
	for i := 0; i < 4; i++ {
		id := tr.MintID()
		if id == 0 || ids[id] {
			t.Fatalf("minted id %v (dup=%v)", id, ids[id])
		}
		ids[id] = true
	}
	if got := reg.Snapshot().Counters["trace_sampled_total"]; got != 0 {
		t.Fatalf("MintID bumped trace_sampled_total to %d", got)
	}
	// The sampling rotation is unmoved: the first accepted message is
	// still slot 0 of the 1-in-4 rotation, i.e. sampled.
	for i := 0; i < 8; i++ {
		id, sampled := tr.Accept()
		if sampled != (i%4 == 0) {
			t.Fatalf("accept %d sampled=%v after MintIDs: rotation phase moved", i, sampled)
		}
		if ids[id] {
			t.Fatalf("accept ID %v collides with a minted ID", id)
		}
	}
	if got := reg.Snapshot().Counters["trace_sampled_total"]; got != 2 {
		t.Fatalf("trace_sampled_total = %d, want 2", got)
	}
	var nilT *Tracer
	if nilT.MintID() != 0 {
		t.Fatal("nil tracer minted an out-of-band ID")
	}
}

func TestTracerBaseDistinguishesRestarts(t *testing.T) {
	a := NewTracer(nil, 1, 1)
	id, _ := a.Accept()
	if uint64(id)>>40 == 0 {
		t.Fatalf("trace ID %v carries no process base in its high bits", id)
	}
	if uint64(id)&0xffffffffff != 1 {
		t.Fatalf("low bits = %d, want counter 1", uint64(id)&0xffffffffff)
	}
}

// TestPrometheusExemplarGolden pins the two text expositions. The 0.0.4
// format (WritePrometheus) is exemplar-free — its parser treats a
// mid-line '#' as an error, so one exemplar suffix would cost a standard
// scrape every metric. The negotiated OpenMetrics form (WriteOpenMetrics)
// carries the ` # {trace_id="..."} value ts` suffix on exemplared
// buckets, renames counter families without their _total suffix, and
// ends with # EOF.
func TestPrometheusExemplarGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", "Accepted frames.").Add(7)
	h := r.Histogram("handle_seconds", "Handle latency.", []float64{0.1, 1})
	h.Observe(0.05) // bucket 0, no exemplar
	h.ObserveExemplar(0.5, SpanID(0xab)) // bucket 1 with exemplar
	h.Observe(0.6) // bucket 1 again: count advances, exemplar stays

	ex := h.Exemplars()
	if ex[0] != nil || ex[1] == nil || ex[2] != nil {
		t.Fatalf("exemplar layout = %v", ex)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP frames_total Accepted frames.
# TYPE frames_total counter
frames_total 7
# HELP handle_seconds Handle latency.
# TYPE handle_seconds histogram
handle_seconds_bucket{le="0.1"} 1
handle_seconds_bucket{le="1"} 3
handle_seconds_bucket{le="+Inf"} 3
handle_seconds_sum 1.15
handle_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Fatalf("0.0.4 exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	buf.Reset()
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want = fmt.Sprintf(`# HELP frames Accepted frames.
# TYPE frames counter
frames_total 7
# HELP handle_seconds Handle latency.
# TYPE handle_seconds histogram
handle_seconds_bucket{le="0.1"} 1
handle_seconds_bucket{le="1"} 3 # {trace_id="00000000000000ab"} 0.5 %.3f
handle_seconds_bucket{le="+Inf"} 3
handle_seconds_sum 1.15
handle_seconds_count 3
# EOF
`, float64(ex[1].Time.UnixNano())/1e9)
	if got := buf.String(); got != want {
		t.Fatalf("OpenMetrics exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// ID 0 must not allocate or attach an exemplar (the unsampled path).
	h2 := r.Histogram("other_seconds", "", []float64{1})
	h2.ObserveExemplar(0.5, 0)
	for _, e := range h2.Exemplars() {
		if e != nil {
			t.Fatal("zero trace ID recorded an exemplar")
		}
	}

	// JSON snapshot carries the exemplars only when at least one landed.
	s := r.Snapshot()
	if hs := s.Histograms["handle_seconds"]; len(hs.Exemplars) != 3 || hs.Exemplars[1] == nil {
		t.Fatalf("snapshot exemplars = %+v", hs.Exemplars)
	}
	if hs := s.Histograms["other_seconds"]; hs.Exemplars != nil {
		t.Fatalf("exemplar-free snapshot = %+v", hs.Exemplars)
	}
}

func TestLoggerWarnLimited(t *testing.T) {
	var buf bytes.Buffer
	now := time.Unix(1000, 0)
	l := NewLogger(&buf, LevelInfo)
	l.SetNow(func() time.Time { return now })
	suppressed := NewRegistry().Counter("log_suppressed_total", "")
	l.SetRateLimit(1, 2, suppressed)

	for i := 0; i < 5; i++ {
		l.WarnLimited("vpe-1", "warning signature", "i", i)
	}
	if got := strings.Count(buf.String(), "msg=\"warning signature\""); got != 2 {
		t.Fatalf("emitted %d lines, want burst of 2:\n%s", got, buf.String())
	}
	if suppressed.Value() != 3 {
		t.Fatalf("suppressed = %d, want 3", suppressed.Value())
	}
	// A different key has its own bucket.
	l.WarnLimited("vpe-2", "warning signature")
	if got := strings.Count(buf.String(), "msg=\"warning signature\""); got != 3 {
		t.Fatalf("second key suppressed: %d lines", got)
	}
	// Tokens refill with time: 2s at 1/s refills the burst.
	now = now.Add(2 * time.Second)
	l.WarnLimited("vpe-1", "warning signature")
	if got := strings.Count(buf.String(), "msg=\"warning signature\""); got != 4 {
		t.Fatalf("refill did not admit: %d lines", got)
	}
	// Without a limit, WarnLimited == Warn.
	l.SetRateLimit(0, 0, nil)
	for i := 0; i < 3; i++ {
		l.WarnLimited("vpe-1", "warning signature")
	}
	if got := strings.Count(buf.String(), "msg=\"warning signature\""); got != 7 {
		t.Fatalf("unlimited mode suppressed: %d lines", got)
	}
}

func TestLoggerRateLimitBucketBound(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewLogger(io.Discard, LevelWarn)
	l.SetNow(func() time.Time { return now })
	l.SetRateLimit(1, 1, nil)
	for i := 0; i < maxLogBuckets+50; i++ {
		l.WarnLimited(fmt.Sprintf("key-%d", i), "x")
		now = now.Add(time.Millisecond)
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > maxLogBuckets {
		t.Fatalf("bucket map grew to %d, bound is %d", n, maxLogBuckets)
	}
}

func TestBuildInfo(t *testing.T) {
	bi := GetBuildInfo()
	if bi.GoVersion == "" {
		t.Fatal("no go version in build info")
	}
	// Under `go test` the main module is resolvable.
	if bi.Module == "" {
		t.Fatal("no module path in build info")
	}
	if again := GetBuildInfo(); again != bi {
		t.Fatal("GetBuildInfo not stable")
	}
}
