// Package obs is the unified observability layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket histograms
// with Prometheus-text and JSON exposition), a ring-buffer decision trace
// that explains anomaly verdicts after the fact, a leveled key=value
// logger, and an HTTP admin surface (metrics, status, traces, health,
// pprof).
//
// The paper's system is a *runtime* predictor operating beside reactive
// monitoring (§1); operators must be able to answer "why was this message
// flagged?" and "is the model drifting?" without stopping the service.
// Every runtime component reports into one Registry, and the same numbers
// appear in logs, Stats() snapshots, and /metrics without double
// bookkeeping.
//
// Cost model: all metric handles are nil-safe. A nil *Counter, *Gauge,
// *Histogram, or *TraceRing turns every operation into a branch-and-return
// — zero allocations, no atomics, no clock reads — so hot paths can be
// instrumented unconditionally and pay only when a registry is actually
// attached. A nil *Registry returns nil handles from every constructor.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Store overwrites the counter, for restoring checkpointed totals. It is
// not part of the hot-path API.
func (c *Counter) Store(n uint64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64. The zero value is ready to use;
// a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt replaces the gauge value with an integer.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// SetTime stores t as Unix seconds (0 for the zero time), the conventional
// "last happened at" gauge encoding.
func (g *Gauge) SetTime(t time.Time) {
	if t.IsZero() {
		g.Set(0)
		return
	}
	g.Set(float64(t.UnixNano()) / 1e9)
}

// Value returns the current value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe. Bucket
// i counts observations v <= bounds[i] (and > bounds[i-1]); one implicit
// overflow bucket (+Inf) counts everything above the last bound, so
// underflow lands in bucket 0 and overflow is never silently dropped. A nil
// Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// exemplars holds the latest exemplar per bucket (len(bounds)+1,
	// same layout as counts); entries are nil until ObserveExemplar
	// lands one in that bucket.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one observed value to the trace that produced it, linking
// a histogram bucket on /metrics to a span on /spans. Only sampled
// observations record exemplars, so the allocation per store is off the
// common path by construction.
type Exemplar struct {
	TraceID SpanID    `json:"trace_id"`
	Value   float64   `json:"value"`
	Time    time.Time `json:"time"`
}

// newHistogram validates and copies the bounds (strictly increasing,
// non-empty).
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// bucketIndex finds v's bucket. Linear scan: bucket counts are small
// (≤ ~20) and the scan is branch-predictable; a binary search costs more
// in practice here.
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveExemplar records one value and attaches the trace that produced
// it as the bucket's exemplar (latest wins). Call it only for sampled
// observations: the exemplar store allocates.
func (h *Histogram) ObserveExemplar(v float64, id SpanID) {
	if h == nil {
		return
	}
	h.Observe(v)
	if id != 0 {
		h.exemplars[h.bucketIndex(v)].Store(&Exemplar{TraceID: id, Value: v, Time: time.Now()})
	}
}

// ObserveDurationExemplar records seconds elapsed since start (from
// Start) with an exemplar.
func (h *Histogram) ObserveDurationExemplar(start time.Time, id SpanID) {
	if h == nil {
		return
	}
	h.ObserveExemplar(time.Since(start).Seconds(), id)
}

// Exemplars returns each bucket's latest exemplar (nil where none
// landed); the final entry is the +Inf overflow bucket's, so the slice is
// len(bounds)+1 like Buckets counts.
func (h *Histogram) Exemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Start returns a start time for ObserveDuration, or the zero time on a
// nil histogram — the no-op path never reads the clock.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveDuration records seconds elapsed since start (from Start).
func (h *Histogram) ObserveDuration(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns (upper bounds, per-bucket counts); the final count is
// the +Inf overflow bucket, so len(counts) == len(bounds)+1.
func (h *Histogram) Buckets() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// ExpBuckets returns n strictly increasing bounds starting at start and
// multiplying by factor — the standard latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start>0, factor>1, n>=1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width>0, n>=1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DurationBuckets is a general-purpose latency bucket layout: 1µs … ~16s
// in powers of 4 (1µs, 4µs, 16µs, 64µs, 256µs, ~1ms, ~4ms, ~16ms, ~65ms,
// ~262ms, ~1s, ~4.2s, ~16.8s).
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 4, 13) }

// metricKind discriminates registry entries for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered metric with its metadata.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry owns a flat namespace of metrics. All methods are safe for
// concurrent use; a nil Registry hands out nil (no-op) metric handles, so
// "observability off" is a nil check away for every instrumented package.
//
// Names follow the Prometheus convention ([a-zA-Z_][a-zA-Z0-9_]*); the
// registry does not enforce it beyond what exposition requires. Registering
// the same name twice returns the same metric handle (and panics when the
// kinds disagree — that is a programming error, not an operational state).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// lookup returns the existing entry for name or registers a new one built
// by mk.
func (r *Registry) lookup(name string, kind metricKind, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, func() *metric {
		return &metric{name: name, help: help, kind: kindCounter, c: &Counter{}}
	}).c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, func() *metric {
		return &metric{name: name, help: help, kind: kindGauge, g: &Gauge{}}
	}).g
}

// Histogram registers (or fetches) a histogram with the given upper
// bounds. The bounds of an already registered histogram win; callers
// re-registering must pass compatible bounds (they are not re-checked).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindHistogram, func() *metric {
		return &metric{name: name, help: help, kind: kindHistogram, h: newHistogram(bounds)}
	}).h
}

// sorted returns the registered metrics in name order — exposition must be
// deterministic (golden tests, diffable scrapes).
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
