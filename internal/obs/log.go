package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int

// Levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level as emitted in the level= field.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Logger emits one structured key=value line per event:
//
//	ts=2018-02-03T04:05:06Z level=info msg=status messages=120 anomalies=3
//
// so the ticker, SIGHUP, and shutdown paths of a long-running binary all
// produce the same machine-parseable shape instead of drifting printf
// formats. A nil Logger drops everything; events below the configured
// level are dropped before formatting.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	now   func() time.Time

	// Rate limiting for hot-path warning lines (WarnLimited). Guarded by
	// mu; nil buckets means unlimited.
	rateLimit  float64 // tokens refilled per second
	rateBurst  float64
	buckets    map[string]*logBucket
	suppressed *Counter
}

// logBucket is one key's token bucket.
type logBucket struct {
	tokens float64
	last   time.Time
}

// maxLogBuckets bounds the per-key bucket map; when full, the sweep drops
// buckets idle long enough to have fully refilled (forgetting them is
// equivalent to a full bucket).
const maxLogBuckets = 1024

// NewLogger returns a logger writing lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level, now: time.Now}
}

// SetRateLimit enables per-key rate limiting for WarnLimited: each key may
// emit at most burst lines at once and refills at perSec lines per second.
// Suppressed lines increment the suppressed counter (nil-safe). perSec <= 0
// disables limiting.
func (l *Logger) SetRateLimit(perSec float64, burst int, suppressed *Counter) {
	if l == nil {
		return
	}
	if burst < 1 {
		burst = 1
	}
	l.mu.Lock()
	l.rateLimit = perSec
	l.rateBurst = float64(burst)
	l.suppressed = suppressed
	if perSec > 0 {
		l.buckets = make(map[string]*logBucket)
	} else {
		l.buckets = nil
	}
	l.mu.Unlock()
}

// WarnLimited logs at warn level subject to the per-key token bucket set by
// SetRateLimit; without a configured limit it behaves exactly like Warn.
// Use it on warning paths that can fire per-message (anomaly warnings, shed
// notices) so a misbehaving vPE cannot flood the log: the first burst lines
// per key pass, the rest are counted in log_suppressed_total instead.
func (l *Logger) WarnLimited(key, msg string, kv ...any) {
	if !l.Enabled(LevelWarn) {
		return
	}
	if !l.allow(key) {
		return
	}
	l.log(LevelWarn, msg, kv)
}

// allow takes one token from key's bucket, reporting whether the line may
// be emitted. Unlimited loggers always allow.
func (l *Logger) allow(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rateLimit <= 0 {
		return true
	}
	now := l.now()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxLogBuckets {
			l.sweepLocked(now)
		}
		b = &logBucket{tokens: l.rateBurst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rateLimit
		if b.tokens > l.rateBurst {
			b.tokens = l.rateBurst
		}
		b.last = now
	}
	if b.tokens < 1 {
		l.suppressed.Inc()
		return false
	}
	b.tokens--
	return true
}

// sweepLocked evicts buckets idle long enough to have refilled completely.
// If none qualify (burst of brand-new keys), it drops everything — losing a
// bucket only resets that key to a full burst, which is an acceptable
// failure mode for a bound on memory.
func (l *Logger) sweepLocked(now time.Time) {
	refill := time.Duration(l.rateBurst / l.rateLimit * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= refill {
			delete(l.buckets, k)
		}
	}
	if len(l.buckets) >= maxLogBuckets {
		l.buckets = make(map[string]*logBucket)
	}
}

// SetNow overrides the timestamp source (tests).
func (l *Logger) SetNow(now func() time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Enabled reports whether a line at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs at debug level; kv is alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	l.mu.Lock()
	defer l.mu.Unlock()
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteValue(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		b.WriteString(quoteValue(formatKV(kv[i+1])))
	}
	if len(kv)%2 == 1 {
		// An odd trailing value is a programming slip; surface it rather
		// than silently dropping it.
		b.WriteString(" _extra=")
		b.WriteString(quoteValue(formatKV(kv[len(kv)-1])))
	}
	b.WriteByte('\n')
	io.WriteString(l.w, b.String())
}

// formatKV renders one value compactly (RFC 3339 for times, %v otherwise).
func formatKV(v any) string {
	switch x := v.(type) {
	case time.Time:
		return x.UTC().Format(time.RFC3339)
	case time.Duration:
		return x.String()
	case float64:
		return strconv.FormatFloat(x, 'g', 6, 64)
	case error:
		return x.Error()
	default:
		return fmt.Sprint(v)
	}
}

// quoteValue quotes a value only when it needs it (spaces, quotes, '=', or
// control characters), keeping the common numeric fields unquoted.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
