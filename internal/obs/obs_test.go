package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Fatal("re-registering a counter must return the same handle")
	}
	c.Store(42)
	if got := c.Value(); got != 42 {
		t.Fatalf("after Store: %d", got)
	}

	g := r.Gauge("g", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v", got)
	}
	g.SetTime(time.Unix(100, 500e6))
	if got := g.Value(); math.Abs(got-100.5) > 1e-9 {
		t.Fatalf("gauge time = %v", got)
	}
	g.SetTime(time.Time{})
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge zero time = %v", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as a gauge after a counter should panic")
		}
	}()
	r.Gauge("x", "")
}

// TestHistogramBuckets pins the bucket semantics: bucket i counts
// v <= bounds[i], underflow lands in bucket 0, overflow in the trailing
// +Inf bucket, and boundary values belong to the lower bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{
		-5,  // underflow → bucket 0
		0.5, // bucket 0
		1,   // boundary → bucket 0
		1.5, // bucket 1
		2,   // boundary → bucket 1
		3,   // bucket 2
		4,   // boundary → bucket 2
		4.1, // overflow
		100, // overflow
	} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if want := []float64{1, 2, 4}; len(bounds) != 3 || bounds[0] != want[0] || bounds[2] != want[2] {
		t.Fatalf("bounds = %v", bounds)
	}
	if want := []uint64{3, 2, 2, 2}; len(counts) != 4 ||
		counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] || counts[3] != want[3] {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-111.1) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v should panic", bounds)
				}
			}()
			newHistogram(bounds)
		}()
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; under -race this doubles as the data-race check, and the
// totals must balance exactly (no lost updates).
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", ExpBuckets(1, 2, 8))
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64((w*perWorker + i) % 300))
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	_, counts := h.Buckets()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != uint64(workers*perWorker) {
		t.Fatalf("bucket total = %d, want %d", total, workers*perWorker)
	}
	// The observed values are k%300 for k = 0..workers*perWorker-1: full
	// cycles of 0..299 plus a partial cycle, all exact in float64.
	n := workers * perWorker
	want := float64(n/300)*(299*300/2) + float64((n%300-1)*(n%300))/2
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1})
	var ring *TraceRing
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	c.Inc()
	c.Add(3)
	c.Store(7)
	g.Set(1)
	g.SetInt(1)
	g.SetTime(time.Now())
	h.Observe(1)
	h.ObserveDuration(h.Start())
	ring.Add(Trace{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || ring.Total() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if !h.Start().IsZero() {
		t.Fatal("nil histogram Start must not read the clock")
	}
	if b, cs := h.Buckets(); b != nil || cs != nil {
		t.Fatal("nil histogram Buckets must be nil")
	}
	if ring.Recent(5) != nil {
		t.Fatal("nil ring Recent must be nil")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var l *Logger
	l.Info("dropped")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must be disabled")
	}
	var hl *Health
	hl.SetReady(false, "x")
	if ok, _ := hl.Ready(); !ok {
		t.Fatal("nil health must read ready")
	}
}

// TestHotPathAllocFree is the instrumentation-overhead contract: counter
// increments, gauge sets, and histogram observes allocate nothing — on
// both the live path and the no-op (nil handle) path.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", ExpBuckets(1, 2, 10))
	var nilC *Counter
	var nilH *Histogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter-inc", func() { c.Inc() }},
		{"counter-add", func() { c.Add(3) }},
		{"gauge-set", func() { g.Set(1.5) }},
		{"histogram-observe", func() { h.Observe(3.7) }},
		{"nil-counter-inc", func() { nilC.Inc() }},
		{"nil-histogram-observe", func() { nilH.Observe(3.7) }},
		{"nil-histogram-start", func() { _ = nilH.Start() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestPrometheusGolden pins the exposition format byte-for-byte: name
// order, HELP/TYPE lines, cumulative le-labelled buckets, and integer
// rendering.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "Last by name.").Add(7)
	r.Gauge("gauge_ratio", "A ratio.").Set(0.25)
	h := r.Histogram("req_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(30)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP gauge_ratio A ratio.
# TYPE gauge_ratio gauge
gauge_ratio 0.25
# HELP req_seconds Request latency.
# TYPE req_seconds histogram
req_seconds_bucket{le="0.1"} 1
req_seconds_bucket{le="1"} 3
req_seconds_bucket{le="+Inf"} 4
req_seconds_sum 31.05
req_seconds_count 4
# HELP zz_total Last by name.
# TYPE zz_total counter
zz_total 7
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.Gauge("g", "").Set(1.5)
	r.Histogram("h", "", []float64{1, 2}).Observe(1.5)

	s := r.Snapshot()
	if s.Counters["c_total"] != 3 || s.Gauges["g"] != 1.5 {
		t.Fatalf("snapshot: %+v", s)
	}
	hs := s.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 1.5 || len(hs.Counts) != 3 || hs.Counts[1] != 1 {
		t.Fatalf("histogram snapshot: %+v", hs)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("JSON round trip: %v\n%s", err, buf.String())
	}
	if round.Counters["c_total"] != 3 {
		t.Fatalf("round trip: %+v", round)
	}
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(3)
	if got := ring.Recent(0); len(got) != 0 {
		t.Fatalf("empty ring Recent = %v", got)
	}
	for i := 1; i <= 5; i++ {
		ring.Add(Trace{Host: "vpe", Score: float64(i)})
	}
	if ring.Total() != 5 {
		t.Fatalf("total = %d", ring.Total())
	}
	got := ring.Recent(0)
	if len(got) != 3 {
		t.Fatalf("recent len = %d", len(got))
	}
	// Newest first, sequence numbers stamped in order.
	for i, tr := range got {
		if wantScore := float64(5 - i); tr.Score != wantScore || tr.Seq != uint64(5-i) {
			t.Fatalf("recent[%d] = %+v", i, tr)
		}
	}
	if got := ring.Recent(1); len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("recent(1) = %+v", got)
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ring.Add(Trace{})
				ring.Recent(8)
			}
		}()
	}
	wg.Wait()
	if ring.Total() != 4000 {
		t.Fatalf("total = %d", ring.Total())
	}
}

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.SetNow(func() time.Time { return time.Date(2018, 2, 3, 4, 5, 6, 0, time.UTC) })

	l.Debug("dropped below level")
	l.Info("status", "messages", 120, "rate", 1.5, "host", "vpe 01", "when", time.Date(2018, 2, 3, 0, 0, 0, 0, time.UTC))
	l.Warn("odd", "k")
	got := buf.String()
	want := "ts=2018-02-03T04:05:06Z level=info msg=status messages=120 rate=1.5 host=\"vpe 01\" when=2018-02-03T00:00:00Z\n" +
		"ts=2018-02-03T04:05:06Z level=warn msg=odd _extra=k\n"
	if got != want {
		t.Fatalf("log output:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelDebug) {
		t.Fatal("level gating wrong")
	}
}

func TestAdminMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "Hits.").Add(2)
	ring := NewTraceRing(8)
	ring.Add(Trace{Host: "vpe01", Score: 7.5, Threshold: 6, Template: 3,
		Window: []TraceStep{{Template: 1, LogProb: -0.2}, {Template: 3, LogProb: -7.5}}})
	health := NewHealth()
	mux := NewAdminMux(AdminConfig{
		Registry: reg,
		Traces:   ring,
		Health:   health,
		Status:   func() any { return map[string]int{"hosts": 4} },
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "hits_total 2") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"hits_total": 2`) {
		t.Fatalf("/metrics json: %d\n%s", code, body)
	}
	if code, body := get("/statusz"); code != 200 || !strings.Contains(body, `"hosts": 4`) {
		t.Fatalf("/statusz: %d\n%s", code, body)
	}
	code, body := get("/traces")
	if code != 200 {
		t.Fatalf("/traces: %d", code)
	}
	var traces struct {
		Total  uint64  `json:"total"`
		Traces []Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("traces JSON: %v\n%s", err, body)
	}
	if traces.Total != 1 || len(traces.Traces) != 1 || traces.Traces[0].Host != "vpe01" ||
		len(traces.Traces[0].Window) != 2 {
		t.Fatalf("traces: %+v", traces)
	}
	if code, _ := get("/traces?n=bogus"); code != 400 {
		t.Fatalf("bad n should 400, got %d", code)
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz ready: %d", code)
	}
	health.SetReady(false, "hot-reload rejected")
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "hot-reload rejected") {
		t.Fatalf("/healthz unready: %d %s", code, body)
	}
	if code, _ := get("/readyz"); code != 503 {
		t.Fatalf("/readyz unready: %d", code)
	}
	health.SetReady(true, "")
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz recovered: %d", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("pprof: %d", code)
	}
}

func TestHealthNamedConditions(t *testing.T) {
	h := NewHealth()
	if ok, _ := h.Ready(); !ok {
		t.Fatal("fresh health unready")
	}

	// Two critical conditions fail independently; readiness names both.
	h.SetCondition("bundle", false, "hot-reload of /tmp/bad.nfvm rejected")
	h.SetCondition("degradation", false, "scoring shed: warnings suppressed")
	ok, reason := h.Ready()
	if ok {
		t.Fatal("failing critical conditions left health ready")
	}
	for _, want := range []string{"bundle: hot-reload of /tmp/bad.nfvm rejected", "degradation: scoring shed"} {
		if !strings.Contains(reason, want) {
			t.Fatalf("reason %q missing %q", reason, want)
		}
	}

	// Clearing one still fails on the other, with the bare "name: reason" form.
	h.SetCondition("degradation", true, "")
	ok, reason = h.Ready()
	if ok || reason != "bundle: hot-reload of /tmp/bad.nfvm rejected" {
		t.Fatalf("single failing condition => (%v, %q)", ok, reason)
	}

	// Informational degradation never fails readiness but is listed.
	h.SetCondition("bundle", true, "")
	h.SetDegraded("adaptation", true, "breaker open")
	if ok, _ := h.Ready(); !ok {
		t.Fatal("informational degradation failed readiness")
	}
	degs := h.Degradations()
	if len(degs) != 1 || degs[0].Name != "adaptation" || degs[0].Reason != "breaker open" {
		t.Fatalf("degradations = %+v", degs)
	}
	conds := h.Conditions()
	if len(conds) != 3 {
		t.Fatalf("conditions = %+v, want 3 entries", conds)
	}
	for i := 1; i < len(conds); i++ {
		if conds[i-1].Name > conds[i].Name {
			t.Fatalf("conditions not sorted: %+v", conds)
		}
	}
	h.SetDegraded("adaptation", false, "")
	if degs := h.Degradations(); len(degs) != 0 {
		t.Fatalf("cleared degradation persists: %+v", degs)
	}
}

func TestAdminMuxReadyzConditions(t *testing.T) {
	health := NewHealth()
	mux := NewAdminMux(AdminConfig{Health: health})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Degraded-but-serving: 200 with the degradation named in the body.
	health.SetDegraded("degradation", true, "learning shed: shard queues backed up")
	code, body := get("/readyz")
	if code != 200 || !strings.Contains(body, "degraded: degradation: learning shed") {
		t.Fatalf("/readyz degraded = %d %q", code, body)
	}

	// JSON form lists every condition with its flags.
	health.SetCondition("bundle", false, "rejected")
	code, body = get("/readyz?format=json")
	if code != 503 {
		t.Fatalf("/readyz json unready = %d", code)
	}
	var doc struct {
		Ready      bool        `json:"ready"`
		Reason     string      `json:"reason"`
		Conditions []Condition `json:"conditions"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("readyz JSON: %v\n%s", err, body)
	}
	if doc.Ready || !strings.Contains(doc.Reason, "bundle: rejected") || len(doc.Conditions) != 2 {
		t.Fatalf("readyz doc = %+v", doc)
	}
}
