package detect

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"nfvpredict/internal/features"
)

func TestLSTMDetectorSaveLoadRoundTrip(t *testing.T) {
	train := [][]features.Event{cyclicStream(400, 4, time.Minute)}
	d := NewLSTMDetector(smallLSTMConfig())
	if err := d.Train(train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLSTMDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical scores on identical input.
	stream := withAnomaly(cyclicStream(120, 4, time.Minute), 60, 62, 99)
	a := d.Score("v", stream)
	b := loaded.Score("v", stream)
	if len(a) != len(b) {
		t.Fatalf("score lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > 1e-12 {
			t.Fatalf("score %d differs: %v vs %v", i, a[i].Score, b[i].Score)
		}
	}
	// The loaded detector can keep training.
	if err := loaded.Update(train); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Adapt(train); err != nil {
		t.Fatal(err)
	}
	// And can stream online.
	st := loaded.NewStream()
	if st == nil {
		t.Fatal("loaded detector should stream")
	}
	if s := st.Push(stream[0]); s != 0 {
		t.Fatalf("first streamed score should be 0, got %v", s)
	}
}

func TestSaveUntrainedDetectorFails(t *testing.T) {
	d := NewLSTMDetector(smallLSTMConfig())
	var buf bytes.Buffer
	if err := d.Save(&buf); err == nil {
		t.Fatal("expected error saving untrained detector")
	}
}

func TestLoadCorruptDetector(t *testing.T) {
	if _, err := LoadLSTMDetector(strings.NewReader("junk")); err == nil {
		t.Fatal("expected error on corrupt input")
	}
}

func TestStreamMatchesBatchScoring(t *testing.T) {
	train := [][]features.Event{cyclicStream(400, 4, time.Minute)}
	d := NewLSTMDetector(smallLSTMConfig())
	if err := d.Train(train); err != nil {
		t.Fatal(err)
	}
	stream := withAnomaly(cyclicStream(80, 4, time.Minute), 40, 42, 99)
	batch := d.Score("v", stream)
	st := d.NewStream()
	for i, e := range stream {
		got := st.Push(e)
		if math.Abs(got-batch[i].Score) > 1e-9 {
			t.Fatalf("stream score %d = %v, batch = %v", i, got, batch[i].Score)
		}
	}
}

func TestStreamOnUntrainedDetector(t *testing.T) {
	d := NewLSTMDetector(smallLSTMConfig())
	if d.NewStream() != nil {
		t.Fatal("untrained detector must return nil stream")
	}
}

// TestStreamSnapshotRoundTrip proves that a stream restored from a snapshot
// continues scoring bit-identically to the uninterrupted original — the
// property the monitor's kill-and-restore checkpoint depends on.
func TestStreamSnapshotRoundTrip(t *testing.T) {
	d := NewLSTMDetector(smallLSTMConfig())
	if err := d.Train([][]features.Event{cyclicStream(400, 4, time.Minute)}); err != nil {
		t.Fatal(err)
	}
	full := d.NewStream()
	events := withAnomaly(cyclicStream(60, 4, time.Minute), 30, 33, 99)
	cut := 25
	for _, e := range events[:cut] {
		full.Push(e)
	}
	snap := full.Snapshot()
	restored, err := d.RestoreStream(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events[cut:] {
		a := full.Push(e)
		b := restored.Push(e)
		if a != b {
			t.Fatalf("restored stream diverged: %v vs %v", a, b)
		}
	}
}

// TestRestoreStreamShapeMismatch checks that a snapshot from one
// architecture is rejected against another instead of scoring garbage.
func TestRestoreStreamShapeMismatch(t *testing.T) {
	d := NewLSTMDetector(smallLSTMConfig())
	if err := d.Train([][]features.Event{cyclicStream(300, 4, time.Minute)}); err != nil {
		t.Fatal(err)
	}
	cfg := smallLSTMConfig()
	cfg.Hidden = []int{8, 8}
	other := NewLSTMDetector(cfg)
	if err := other.Train([][]features.Event{cyclicStream(300, 4, time.Minute)}); err != nil {
		t.Fatal(err)
	}
	st := d.NewStream()
	st.Push(features.Event{Time: time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC), Template: 0})
	if _, err := other.RestoreStream(st.Snapshot()); err == nil {
		t.Fatal("shape-mismatched snapshot must be rejected")
	}
	// Untrained detectors reject restores outright.
	if _, err := NewLSTMDetector(smallLSTMConfig()).RestoreStream(st.Snapshot()); err == nil {
		t.Fatal("untrained detector must reject restore")
	}
}
