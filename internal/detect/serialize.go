package detect

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"nfvpredict/internal/nn"
)

// detectorSnapshot is the gob wire form of an LSTMDetector: configuration,
// template→class vocabulary, and model weights. It is what an offline
// training job ships to the live monitors (cmd/nfvmonitor).
type detectorSnapshot struct {
	Cfg      LSTMConfig
	Vocab    map[int]int
	Capacity int
	Model    []byte
}

// Save serializes the trained detector to w. It fails on an untrained
// detector: there is nothing useful to ship.
func (d *LSTMDetector) Save(w io.Writer) error {
	if d.model == nil {
		return fmt.Errorf("detect: cannot save an untrained detector")
	}
	var modelBuf bytes.Buffer
	if err := d.model.Save(&modelBuf); err != nil {
		return err
	}
	snap := detectorSnapshot{
		Cfg:      d.cfg,
		Vocab:    make(map[int]int, len(d.vocab.index)),
		Capacity: d.vocab.capacity,
		Model:    modelBuf.Bytes(),
	}
	for k, v := range d.vocab.index {
		snap.Vocab[k] = v
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("detect: encoding detector: %w", err)
	}
	return nil
}

// LoadLSTMDetector reconstructs a detector saved with Save. The loaded
// detector scores identically to the original and can continue training
// (Update/Adapt).
func LoadLSTMDetector(r io.Reader) (*LSTMDetector, error) {
	var snap detectorSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("detect: decoding detector: %w", err)
	}
	d := NewLSTMDetector(snap.Cfg)
	model, err := nn.LoadSequenceModel(bytes.NewReader(snap.Model))
	if err != nil {
		return nil, err
	}
	d.model = model
	d.vocab = NewVocabulary(snap.Capacity)
	for k, v := range snap.Vocab {
		d.vocab.index[k] = v
	}
	d.opt = nn.NewAdam(snap.Cfg.LR, snap.Cfg.Clip)
	d.rebuildTrainer()
	d.rng = rand.New(rand.NewSource(snap.Cfg.Seed))
	return d, nil
}
