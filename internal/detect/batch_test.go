package detect

import (
	"math"
	"testing"
	"time"

	"nfvpredict/internal/features"
)

// batchDetector trains a small detector for batch-equivalence tests.
func batchDetector(t testing.TB, seed int64) *LSTMDetector {
	t.Helper()
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	var stream []features.Event
	for i := 0; i < 400; i++ {
		stream = append(stream, features.Event{
			Time: base.Add(time.Duration(i) * 30 * time.Second), Template: i % 5,
		})
	}
	cfg := DefaultLSTMConfig()
	cfg.Hidden = []int{16}
	cfg.MaxVocab = 8
	cfg.Epochs = 1
	cfg.OverSampleRounds = 0
	cfg.Seed = seed
	det := NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	return det
}

// TestPushBatchBitIdenticalToPush drives N streams through PushBatch and N
// twin streams through sequential Push with the same events, at batch sizes
// 1, 3, and 8, and requires bit-identical scores at every step — including
// the cold first event of each stream and a mix of detectors per batch.
func TestPushBatchBitIdenticalToPush(t *testing.T) {
	detA := batchDetector(t, 1)
	detB := batchDetector(t, 2)
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, B := range []int{1, 3, 8} {
		seq := make([]*LSTMStream, B)
		bat := make([]*LSTMStream, B)
		for b := 0; b < B; b++ {
			d := detA
			if b%3 == 2 {
				d = detB // mixed models within one batch
			}
			seq[b] = d.NewStream()
			bat[b] = d.NewStream()
		}
		var bs StreamBatch
		events := make([]features.Event, B)
		scores := make([]float64, B)
		for step := 0; step < 30; step++ {
			for b := 0; b < B; b++ {
				events[b] = features.Event{
					Time:     base.Add(time.Duration(step*30+b) * time.Second),
					Template: (step*7 + b) % 9, // includes out-of-vocab IDs
				}
			}
			PushBatch(&bs, bat, events, scores)
			for b := 0; b < B; b++ {
				want := seq[b].Push(events[b])
				if math.Float64bits(scores[b]) != math.Float64bits(want) {
					t.Fatalf("B=%d step=%d lane=%d: %v != %v", B, step, b, scores[b], want)
				}
			}
		}
	}
}

// TestScoringHotPathAllocFree is the CI guard on the serving hot path:
// after warm-up, neither the sequential Push nor the batched PushBatch may
// allocate.
func TestScoringHotPathAllocFree(t *testing.T) {
	det := batchDetector(t, 3)
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)

	s := det.NewStream()
	ev := features.Event{Time: base, Template: 1}
	s.Push(ev)
	if n := testing.AllocsPerRun(100, func() {
		ev.Time = ev.Time.Add(30 * time.Second)
		s.Push(ev)
	}); n != 0 {
		t.Fatalf("sequential Push allocates %v per run, want 0", n)
	}

	const B = 8
	streams := make([]*LSTMStream, B)
	events := make([]features.Event, B)
	scores := make([]float64, B)
	for b := 0; b < B; b++ {
		streams[b] = det.NewStream()
		events[b] = features.Event{Time: base, Template: b % 5}
	}
	var bs StreamBatch
	PushBatch(&bs, streams, events, scores) // warm the scratch
	if n := testing.AllocsPerRun(100, func() {
		for b := range events {
			events[b].Time = events[b].Time.Add(30 * time.Second)
		}
		PushBatch(&bs, streams, events, scores)
	}); n != 0 {
		t.Fatalf("PushBatch allocates %v per run, want 0", n)
	}
}
