package detect

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nfvpredict/internal/features"
	"nfvpredict/internal/nn"
	"nfvpredict/internal/obs"
)

// LSTMConfig parameterizes the LSTM detector.
type LSTMConfig struct {
	// Hidden lists LSTM layer widths; the paper uses two LSTM layers.
	Hidden []int
	// UseGap feeds the inter-arrival gap alongside the template one-hot,
	// the (m_i, t_i − t_{i−1}) tuple of §4.2.
	UseGap bool
	// MaxVocab caps model classes (frequent templates + "other").
	MaxVocab int
	// WindowLen and Stride control BPTT window extraction.
	WindowLen, Stride int
	// Epochs is the number of initial-training passes.
	Epochs int
	// UpdateEpochs is the number of passes per monthly incremental update.
	UpdateEpochs int
	// OverSampleRounds bounds the §4.2 minority-pattern over-sampling
	// loop (the loop also exits early once the training false-positive
	// proxy stops improving).
	OverSampleRounds int
	// AdaptFreezeLayers is how many bottom LSTM layers stay frozen while
	// fine-tuning the student after a system update (§4.3).
	AdaptFreezeLayers int
	// AdaptEpochs is the number of fine-tuning passes during Adapt.
	AdaptEpochs int
	// LR and Clip configure the Adam optimizer.
	LR, Clip float64
	// MaxWindowsPerEpoch subsamples training windows for bounded cost;
	// 0 means no cap.
	MaxWindowsPerEpoch int
	// BatchWindows is how many windows share one optimizer step. 1 (the
	// default) reproduces strict per-window SGD; larger values enable
	// data-parallel gradient computation across Parallelism workers.
	BatchWindows int
	// Parallelism is the number of goroutines used for in-batch gradient
	// computation and training-loss evaluation. Results are bit-identical
	// for any value; ≤1 means sequential.
	Parallelism int
	// Seed drives initialization and shuffling.
	Seed int64
}

// DefaultLSTMConfig mirrors the paper's architecture (2 LSTM layers +
// 1 dense) at simulation scale.
func DefaultLSTMConfig() LSTMConfig {
	return LSTMConfig{
		Hidden:             []int{32, 32},
		UseGap:             true,
		MaxVocab:           80,
		WindowLen:          24,
		Stride:             12,
		Epochs:             2,
		UpdateEpochs:       1,
		OverSampleRounds:   2,
		AdaptFreezeLayers:  1,
		AdaptEpochs:        8,
		LR:                 3e-3,
		Clip:               5,
		MaxWindowsPerEpoch: 4000,
		BatchWindows:       1,
		Seed:               1,
	}
}

// LSTMDetector is the paper's primary method: an LSTM language model over
// template sequences; the anomaly score of a message is the negative log-
// likelihood the model assigned it given its context (§4.2).
type LSTMDetector struct {
	cfg     LSTMConfig
	vocab   *Vocabulary
	model   *nn.SequenceModel
	opt     *nn.Adam
	trainer *nn.BatchTrainer
	rng     *rand.Rand
	met     lstmMetrics
	// precision is the serving-path inference mode (see precision.go),
	// stored atomically: the lifecycle re-packs serving sets (promotion,
	// rollback, reload) while in-flight cycles Clone the same detectors.
	// The float64 master model is authoritative regardless; reduced
	// precisions pack a read-only serving mirror after every training
	// entry point.
	precision atomic.Uint32
}

// lstmMetrics holds the detector's observability handles. All fields are
// nil until SetMetrics attaches a registry; every operation on a nil
// handle is a no-op, so the uninstrumented hot path pays one predictable
// branch and nothing else (benchmarked in bench_obs_test.go).
type lstmMetrics struct {
	// steps / stepSeconds cover online scoring (LSTMStream.Push →
	// StepLogProbs), the monitor's per-message hot path. steps also counts
	// lanes scored through PushBatch; stepSeconds times sequential steps
	// only (batch latency lands in batchSeconds so it cannot skew the
	// per-step distribution).
	steps       *obs.Counter
	stepSeconds *obs.Histogram
	// Batched-inference metrics: batches run, lanes per batch, and the
	// wall time of each StepLogProbsBatch call.
	batches      *obs.Counter
	batchLanes   *obs.Histogram
	batchSeconds *obs.Histogram
	// Training-progress metrics: one epoch = one trainEpoch pass.
	epochs       *obs.Counter
	epochLoss    *obs.Gauge
	epochSeconds *obs.Histogram
	tokensPerSec *obs.Gauge
	trainTokens  *obs.Counter
	// oversampleRounds counts §4.2 minority-pattern over-sampling rounds
	// actually run (the loop can exit early).
	oversampleRounds *obs.Counter
}

// SetMetrics attaches the detector to a registry; prefix (e.g.
// "cluster0_") namespaces multi-detector deployments, since the registry
// is a flat namespace. Call before serving or training; passing a nil
// registry detaches. Metric names: <prefix>lstm_steps_total,
// <prefix>lstm_step_seconds, <prefix>lstm_epochs_total,
// <prefix>lstm_epoch_loss, <prefix>lstm_epoch_seconds,
// <prefix>lstm_tokens_per_sec, <prefix>lstm_train_tokens_total,
// <prefix>lstm_oversample_rounds_total.
func (d *LSTMDetector) SetMetrics(reg *obs.Registry, prefix string) {
	if reg == nil {
		d.met = lstmMetrics{}
		return
	}
	d.met = lstmMetrics{
		steps:       reg.Counter(prefix+"lstm_steps_total", "Online scoring steps (StepLogProbs calls via LSTMStream.Push)."),
		stepSeconds: reg.Histogram(prefix+"lstm_step_seconds", "StepLogProbs latency on the online scoring path.", obs.DurationBuckets()),
		batches:     reg.Counter(prefix+"lstm_batches_total", "Batched scoring calls (PushBatch → StepLogProbsBatch)."),
		batchLanes: reg.Histogram(prefix+"lstm_batch_lanes", "Streams scored per batched call.",
			obs.ExpBuckets(1, 2, 6)),
		batchSeconds: reg.Histogram(prefix+"lstm_batch_seconds", "StepLogProbsBatch latency per batched call.",
			obs.DurationBuckets()),
		epochs:    reg.Counter(prefix+"lstm_epochs_total", "Training epochs completed (initial, update, adapt, over-sample)."),
		epochLoss: reg.Gauge(prefix+"lstm_epoch_loss", "Mean per-token log-loss of the most recent training epoch."),
		epochSeconds: reg.Histogram(prefix+"lstm_epoch_seconds", "Wall time per training epoch.",
			obs.ExpBuckets(0.001, 4, 10)),
		tokensPerSec:     reg.Gauge(prefix+"lstm_tokens_per_sec", "Training throughput of the most recent epoch."),
		trainTokens:      reg.Counter(prefix+"lstm_train_tokens_total", "Tokens consumed by training epochs."),
		oversampleRounds: reg.Counter(prefix+"lstm_oversample_rounds_total", "§4.2 over-sampling rounds run."),
	}
}

// NewLSTMDetector returns an untrained detector.
func NewLSTMDetector(cfg LSTMConfig) *LSTMDetector {
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{32, 32}
	}
	if cfg.WindowLen < 2 {
		cfg.WindowLen = 2
	}
	if cfg.Stride < 1 {
		cfg.Stride = cfg.WindowLen
	}
	return &LSTMDetector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Detector.
func (d *LSTMDetector) Name() string { return "lstm" }

// parallelism returns the effective worker count (at least 1).
func (d *LSTMDetector) parallelism() int {
	if d.cfg.Parallelism < 1 {
		return 1
	}
	return d.cfg.Parallelism
}

// rebuildTrainer must run whenever d.model or d.opt is replaced: the
// trainer caches the parameter list and the shadow models that share the
// model's weights.
func (d *LSTMDetector) rebuildTrainer() {
	batch := d.cfg.BatchWindows
	if batch < 1 {
		batch = 1
	}
	d.trainer = nn.NewBatchTrainer(d.model, d.opt, batch, d.parallelism())
}

// Model exposes the underlying sequence model (nil before Train), used by
// serialization paths and tests.
func (d *LSTMDetector) Model() *nn.SequenceModel { return d.model }

// Clone returns a deep, independently trainable copy of a trained
// detector — the candidate-building primitive of the online lifecycle: the
// clone can Update/Adapt in a background goroutine while the original
// keeps serving, sharing no mutable state (weights, vocabulary, optimizer
// moments, RNG, and scratch are all copied or fresh). The clone starts
// with fresh optimizer moments and a Seed-reset RNG, like a detector
// loaded from disk, and carries no metrics registry — call SetMetrics on
// it (e.g. through an obs.Scope prefix) if its training should be
// observable. Cloning an untrained detector returns an untrained detector.
func (d *LSTMDetector) Clone() *LSTMDetector {
	out := NewLSTMDetector(d.cfg)
	if d.model == nil {
		return out
	}
	out.model = d.model.Clone()
	out.vocab = d.vocab.Clone()
	out.opt = nn.NewAdam(d.cfg.LR, d.cfg.Clip)
	out.rebuildTrainer()
	// The clone inherits the precision setting but no packed engine
	// (model.Clone never copies one): clones exist to be fine-tuned, and
	// Update/Adapt re-pack on completion. At f64 this whole path is free.
	out.precision.Store(d.precision.Load())
	return out
}

// Fingerprint returns the underlying model's weight fingerprint (0 for an
// untrained detector), the generation identity reported by the lifecycle
// /models listing.
func (d *LSTMDetector) Fingerprint() uint64 {
	if d.model == nil {
		return 0
	}
	return d.model.Fingerprint()
}

// tokenize converts an event stream into model tokens.
func (d *LSTMDetector) tokenize(stream []features.Event) []nn.Token {
	toks := make([]nn.Token, len(stream))
	for i, e := range stream {
		toks[i] = nn.Token{ID: d.vocab.Class(e.Template), Gap: gapSeconds(stream, i)}
	}
	return toks
}

// windows cuts per-stream tokens into overlapping BPTT windows.
func (d *LSTMDetector) windows(streams [][]features.Event) [][]nn.Token {
	var out [][]nn.Token
	for _, s := range streams {
		toks := d.tokenize(s)
		for lo := 0; lo+2 <= len(toks); lo += d.cfg.Stride {
			hi := lo + d.cfg.WindowLen
			if hi > len(toks) {
				hi = len(toks)
			}
			out = append(out, toks[lo:hi])
			if hi == len(toks) {
				break
			}
		}
	}
	return out
}

// Train implements Detector: vocabulary fit, initial epochs, then the
// §4.2 over-sampling loop on poorly modeled normal windows.
func (d *LSTMDetector) Train(streams [][]features.Event) error {
	if countEvents(streams) < 2 {
		return fmt.Errorf("detect: lstm training needs at least 2 events")
	}
	d.vocab = BuildVocabulary(streams, d.cfg.MaxVocab)
	// The model's class space is the vocabulary capacity, not the number
	// of templates seen so far: spare slots are assigned to templates that
	// appear after system updates (see Vocabulary).
	d.model = nn.NewSequenceModel(nn.SeqModelConfig{
		Vocab:  d.vocab.Size(),
		Hidden: d.cfg.Hidden,
		UseGap: d.cfg.UseGap,
		Seed:   d.cfg.Seed,
	})
	d.opt = nn.NewAdam(d.cfg.LR, d.cfg.Clip)
	d.rebuildTrainer()
	wins := d.windows(streams)
	for e := 0; e < d.cfg.Epochs; e++ {
		d.trainEpoch(wins)
	}
	d.overSampleLoop(wins)
	d.repack()
	return nil
}

// Update implements Detector: incremental training on fresh data (§4.3
// online learning). It is weight-only: the vocabulary is NOT extended, so
// templates introduced by a software update keep folding into "other" —
// which is why naive incremental updates cannot fully recover from an
// update (Figure 7's baseline/cust dip) and the paper reaches for either
// transfer-learning adaptation (Adapt, which does extend the vocabulary)
// or a full retrain once enough fresh data has accumulated.
func (d *LSTMDetector) Update(streams [][]features.Event) error {
	if d.model == nil {
		return d.Train(streams)
	}
	d.invalidatePacked()
	wins := d.windows(streams)
	for e := 0; e < d.cfg.UpdateEpochs; e++ {
		d.trainEpoch(wins)
	}
	d.repack()
	return nil
}

// Adapt implements Detector: teacher→student transfer learning. The
// student copies the teacher, freezes the bottom layers, and fine-tunes
// the top of the network on the (short) fresh streams (§4.3).
func (d *LSTMDetector) Adapt(streams [][]features.Event) error {
	if d.model == nil {
		return d.Train(streams)
	}
	d.invalidatePacked()
	d.vocab.Assign(streams)
	student := d.model.Clone()
	// Never freeze the whole recurrent stack: fine-tuning needs at least
	// the top LSTM layer plus the dense output (§4.3 "fine tune top
	// layers of the model").
	freeze := d.cfg.AdaptFreezeLayers
	if max := len(d.cfg.Hidden) - 1; freeze > max {
		freeze = max
	}
	student.FreezeBottomLayers(freeze)
	d.model = student
	d.opt = nn.NewAdam(d.cfg.LR, d.cfg.Clip) // fresh moments for the student
	d.rebuildTrainer()
	wins := d.windows(streams)
	epochs := d.cfg.AdaptEpochs
	if epochs < 1 {
		epochs = 1
	}
	for e := 0; e < epochs; e++ {
		if e == (epochs+1)/2 {
			// Gradual unfreezing: the first half of fine-tuning updates
			// only the top layers (stabilizing on the teacher's
			// features); the second half unfreezes everything so the
			// bottom layer's input projections for newly assigned
			// template slots — random until now — can learn. Without
			// this, a disruptive update whose new templates dominate
			// traffic leaves the frozen layer unable to represent them.
			d.model.Unfreeze()
		}
		d.trainEpoch(wins)
	}
	d.model.Unfreeze()
	d.repack()
	return nil
}

// trainEpoch shuffles and trains one pass over the windows, respecting the
// per-epoch cap. The shuffled order is fixed by the detector RNG before the
// trainer sees it, so the result does not depend on cfg.Parallelism.
func (d *LSTMDetector) trainEpoch(wins [][]nn.Token) {
	idx := d.rng.Perm(len(wins))
	cap := len(idx)
	if d.cfg.MaxWindowsPerEpoch > 0 && cap > d.cfg.MaxWindowsPerEpoch {
		cap = d.cfg.MaxWindowsPerEpoch
	}
	epoch := make([][]nn.Token, cap)
	tokens := 0
	for k, i := range idx[:cap] {
		epoch[k] = wins[i]
		tokens += len(wins[i])
	}
	start := d.met.epochSeconds.Start()
	loss := d.trainer.Train(epoch)
	if !start.IsZero() {
		elapsed := time.Since(start).Seconds()
		d.met.epochSeconds.Observe(elapsed)
		if elapsed > 0 {
			d.met.tokensPerSec.Set(float64(tokens) / elapsed)
		}
	}
	d.met.epochs.Inc()
	d.met.epochLoss.Set(loss)
	d.met.trainTokens.Add(uint64(tokens))
}

// overSampleLoop implements the §4.2 minority-pattern procedure: after
// each round, normal windows the model still scores badly (false-positive
// proxies) are over-sampled together with a random sample of the rest;
// the loop exits when the bad-window loss stops improving.
func (d *LSTMDetector) overSampleLoop(wins [][]nn.Token) {
	if len(wins) == 0 {
		return
	}
	prevBad := -1.0
	for round := 0; round < d.cfg.OverSampleRounds; round++ {
		d.met.oversampleRounds.Inc()
		type wl struct {
			i    int
			loss float64
		}
		losses := make([]wl, len(wins))
		d.forEachWindow(len(wins), func(i int) {
			losses[i] = wl{i, d.model.SequenceLogLoss(wins[i])}
		})
		sort.Slice(losses, func(a, b int) bool { return losses[a].loss > losses[b].loss })
		nBad := len(losses) / 5
		if nBad == 0 {
			nBad = 1
		}
		var badMean float64
		for _, x := range losses[:nBad] {
			badMean += x.loss
		}
		badMean /= float64(nBad)
		if prevBad >= 0 && badMean >= prevBad*0.995 {
			return // no further improvement in the false-positive proxy
		}
		prevBad = badMean

		// Over-sample the misclassified windows, random-sample others.
		var batch [][]nn.Token
		for _, x := range losses[:nBad] {
			for k := 0; k < 3; k++ {
				batch = append(batch, wins[x.i])
			}
		}
		rest := losses[nBad:]
		for k := 0; k < len(rest)/3; k++ {
			batch = append(batch, wins[rest[d.rng.Intn(len(rest))].i])
		}
		d.rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
		d.trainer.Train(batch)
	}
}

// forEachWindow runs fn(i) for i in [0, n) on the detector's configured
// worker count. fn must write results by index; with that discipline the
// outcome is independent of the parallelism level.
func (d *LSTMDetector) forEachWindow(n int, fn func(i int)) {
	workers := d.parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}

// Score implements Detector: each message's score is its negative log-
// likelihood under the model given the preceding stream.
func (d *LSTMDetector) Score(vpe string, stream []features.Event) []ScoredEvent {
	if d.model == nil || len(stream) == 0 {
		return nil
	}
	out := make([]ScoredEvent, 0, len(stream))
	st := d.model.NewStreamState()
	toks := d.tokenize(stream)
	// The first token has no context; give it the neutral score 0.
	out = append(out, ScoredEvent{Time: stream[0].Time, VPE: vpe, Score: 0})
	for i := 0; i+1 < len(toks); i++ {
		lp := d.model.StepLogProbs(toks[i], st)
		out = append(out, ScoredEvent{
			Time:  stream[i+1].Time,
			VPE:   vpe,
			Score: -lp[toks[i+1].ID],
		})
	}
	return out
}

func countEvents(streams [][]features.Event) int {
	n := 0
	for _, s := range streams {
		n += len(s)
	}
	return n
}
