package detect

import (
	"fmt"
	"math/rand"
	"time"

	"nfvpredict/internal/features"
	"nfvpredict/internal/mat"
	"nfvpredict/internal/svm"
)

// OCSVMConfig parameterizes the one-class SVM baseline.
type OCSVMConfig struct {
	// WindowWidth buckets the stream into fixed windows whose normalized
	// count vectors are the SVM inputs — the hand-engineered feature step
	// the paper criticizes shallow methods for needing (§5.2).
	WindowWidth time.Duration
	// Nu, Gamma, Iters configure the underlying solver.
	Nu, Gamma float64
	Iters     int
	// MaxTrainSamples caps the kernel problem size by subsampling.
	MaxTrainSamples int
	// ReservoirSize is how many recent training windows are retained for
	// the incremental re-fits performed by Update/Adapt.
	ReservoirSize int
	// Seed drives subsampling.
	Seed int64
}

// DefaultOCSVMConfig returns the baseline configuration.
func DefaultOCSVMConfig() OCSVMConfig {
	return OCSVMConfig{
		WindowWidth:     10 * time.Minute,
		Nu:              0.08,
		Gamma:           3.0,
		Iters:           4000,
		MaxTrainSamples: 400,
		ReservoirSize:   1200,
		Seed:            1,
	}
}

// OCSVMDetector is the one-class SVM baseline (§5.2, Wang et al. 2004).
// Shallow models have no incremental weight update, so Update/Adapt
// re-fit on a reservoir of recent windows — the closest equivalent of the
// customization/adaptation mechanisms, per the paper's fair-comparison
// setup.
type OCSVMDetector struct {
	cfg       OCSVMConfig
	vec       *features.Vectorizer
	model     *svm.Model
	reservoir []features.Window
	rng       *rand.Rand
}

// NewOCSVMDetector returns an untrained detector.
func NewOCSVMDetector(cfg OCSVMConfig) *OCSVMDetector {
	if cfg.WindowWidth <= 0 {
		cfg.WindowWidth = 10 * time.Minute
	}
	if cfg.MaxTrainSamples <= 0 {
		cfg.MaxTrainSamples = 400
	}
	if cfg.ReservoirSize < cfg.MaxTrainSamples {
		cfg.ReservoirSize = cfg.MaxTrainSamples
	}
	return &OCSVMDetector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Detector.
func (d *OCSVMDetector) Name() string { return "ocsvm" }

func (d *OCSVMDetector) windowsOf(streams [][]features.Event) []features.Window {
	var out []features.Window
	for _, s := range streams {
		out = append(out, features.Windowize(s, d.cfg.WindowWidth)...)
	}
	return out
}

// Train implements Detector.
func (d *OCSVMDetector) Train(streams [][]features.Event) error {
	wins := d.windowsOf(streams)
	if len(wins) == 0 {
		return fmt.Errorf("detect: ocsvm training needs at least one window")
	}
	d.vec = features.NewVectorizer(false)
	d.vec.Fit(wins)
	d.reservoir = nil
	d.absorb(wins)
	return d.refit()
}

// Update implements Detector: absorb fresh windows and re-fit.
func (d *OCSVMDetector) Update(streams [][]features.Event) error {
	if d.model == nil {
		return d.Train(streams)
	}
	d.absorb(d.windowsOf(streams))
	return d.refit()
}

// Adapt implements Detector: bias the reservoir toward the fresh
// post-update windows, then re-fit — the shallow-model analogue of
// fine-tuning on one week of new data.
func (d *OCSVMDetector) Adapt(streams [][]features.Event) error {
	if d.model == nil {
		return d.Train(streams)
	}
	fresh := d.windowsOf(streams)
	if len(fresh) > 0 {
		// Keep only a residue of old behavior; the new regime dominates.
		keep := len(d.reservoir) / 4
		d.reservoir = d.reservoir[len(d.reservoir)-keep:]
		d.absorb(fresh)
	}
	return d.refit()
}

// absorb appends windows to the reservoir, evicting oldest entries.
func (d *OCSVMDetector) absorb(wins []features.Window) {
	d.reservoir = append(d.reservoir, wins...)
	if over := len(d.reservoir) - d.cfg.ReservoirSize; over > 0 {
		d.reservoir = d.reservoir[over:]
	}
}

func (d *OCSVMDetector) refit() error {
	n := len(d.reservoir)
	if n == 0 {
		return fmt.Errorf("detect: ocsvm has no training windows")
	}
	idx := d.rng.Perm(n)
	if len(idx) > d.cfg.MaxTrainSamples {
		idx = idx[:d.cfg.MaxTrainSamples]
	}
	xs := make([]mat.Vector, len(idx))
	for i, j := range idx {
		xs[i] = d.vec.Transform(d.reservoir[j])
	}
	m, err := svm.Train(xs, svm.Config{
		Nu:    d.cfg.Nu,
		Gamma: d.cfg.Gamma,
		Iters: d.cfg.Iters,
		Seed:  d.cfg.Seed,
	})
	if err != nil {
		return fmt.Errorf("detect: ocsvm refit: %w", err)
	}
	d.model = m
	return nil
}

// Score implements Detector: every message carries its window's SVM
// boundary distance (positive = outside the normal region). Per-message
// stamping keeps window methods compatible with the §5.1 warning rule;
// see AEDetector.Score.
func (d *OCSVMDetector) Score(vpe string, stream []features.Event) []ScoredEvent {
	if d.model == nil || len(stream) == 0 {
		return nil
	}
	wins := features.Windowize(stream, d.cfg.WindowWidth)
	scores := make(map[int64]float64, len(wins))
	for _, w := range wins {
		scores[w.Start.UnixNano()] = d.model.Score(d.vec.Transform(w))
	}
	out := make([]ScoredEvent, len(stream))
	for i, e := range stream {
		out[i] = ScoredEvent{
			Time:  e.Time,
			VPE:   vpe,
			Score: scores[e.Time.Truncate(d.cfg.WindowWidth).UnixNano()],
		}
	}
	return out
}
