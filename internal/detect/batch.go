package detect

import (
	"nfvpredict/internal/features"
	"nfvpredict/internal/nn"
)

// StreamBatch is the reusable scratch one scoring worker needs to push a
// batch of streams: the model-level batch scratch plus the grouping and
// gather slices. After warm-up at a given batch size, PushBatch allocates
// nothing. The zero value is ready to use; a StreamBatch is owned by one
// goroutine at a time.
type StreamBatch struct {
	sb      nn.BatchScratch
	groups  []streamGroup
	toks    []nn.Token
	started []bool
	pending []nn.Token
	states  []*nn.StreamState
}

// streamGroup collects the lanes of one batch that score against the same
// model, so each distinct model runs one StepLogProbsBatch over its lanes.
type streamGroup struct {
	det   *LSTMDetector
	model *nn.SequenceModel
	lanes []int
}

// PushBatch scores one pending event on each of B independent streams,
// batching the LSTM steps of streams that share a model into one
// StepLogProbsBatch call. streams, events, and scores are parallel slices;
// scores[b] receives what streams[b].Push(events[b]) would have returned,
// bit for bit — batching changes the evaluation schedule, never the
// arithmetic of a lane.
//
// The streams must be distinct (a stream's next event depends on its
// previous one; callers with several pending events for one stream submit
// them across successive batches). PushBatch is not safe for concurrent use
// of one StreamBatch.
func PushBatch(bs *StreamBatch, streams []*LSTMStream, events []features.Event, scores []float64) {
	B := len(streams)
	if len(events) != B || len(scores) != B {
		panic("detect: PushBatch slice length mismatch")
	}
	if B == 0 {
		return
	}
	if cap(bs.toks) < B {
		bs.toks = make([]nn.Token, B)
		bs.started = make([]bool, B)
	}
	bs.toks, bs.started = bs.toks[:B], bs.started[:B]
	for b, s := range streams {
		gap := 60.0
		if s.started {
			gap = events[b].Time.Sub(s.last).Seconds()
			if gap < 0 {
				gap = 0
			}
		}
		bs.toks[b] = nn.Token{ID: s.det.vocab.Class(events[b].Template), Gap: gap}
		bs.started[b] = s.started
		scores[b] = 0
	}
	// Group started lanes by model pointer. Linear scan, not a map: batch
	// sizes are small and most deployments have a handful of models.
	bs.groups = bs.groups[:0]
grouping:
	for b, s := range streams {
		if !bs.started[b] {
			continue
		}
		for gi := range bs.groups {
			if bs.groups[gi].model == s.det.model {
				bs.groups[gi].lanes = append(bs.groups[gi].lanes, b)
				continue grouping
			}
		}
		if len(bs.groups) < cap(bs.groups) {
			bs.groups = bs.groups[:len(bs.groups)+1]
			g := &bs.groups[len(bs.groups)-1]
			g.det, g.model, g.lanes = s.det, s.det.model, append(g.lanes[:0], b)
		} else {
			bs.groups = append(bs.groups, streamGroup{det: s.det, model: s.det.model, lanes: []int{b}})
		}
	}
	for gi := range bs.groups {
		g := &bs.groups[gi]
		L := len(g.lanes)
		if cap(bs.pending) < L {
			bs.pending = make([]nn.Token, L)
			bs.states = make([]*nn.StreamState, L)
		}
		bs.pending, bs.states = bs.pending[:L], bs.states[:L]
		for k, b := range g.lanes {
			bs.pending[k] = streams[b].pending
			bs.states[k] = streams[b].st
		}
		t0 := g.det.met.batchSeconds.Start()
		lps := g.model.StepLogProbsBatch(bs.pending, bs.states, &bs.sb)
		g.det.met.batchSeconds.ObserveDuration(t0)
		g.det.met.steps.Add(uint64(L))
		g.det.met.batches.Inc()
		g.det.met.batchLanes.Observe(float64(L))
		for k, b := range g.lanes {
			scores[b] = -lps[k][bs.toks[b].ID]
		}
	}
	for b, s := range streams {
		s.pending = bs.toks[b]
		s.last = events[b].Time
		s.started = true
	}
}
