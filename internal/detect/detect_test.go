package detect

import (
	"testing"
	"time"

	"nfvpredict/internal/features"
)

var d0 = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)

// cyclicStream produces a deterministic template cycle with fixed spacing:
// the kind of strongly sequential "normal" traffic an LSTM should learn.
func cyclicStream(n int, period int, spacing time.Duration) []features.Event {
	out := make([]features.Event, n)
	for i := range out {
		out[i] = features.Event{Time: d0.Add(time.Duration(i) * spacing), Template: i % period}
	}
	return out
}

// withAnomaly copies stream and replaces templates in [lo,hi) with a
// template the training data never contained.
func withAnomaly(stream []features.Event, lo, hi, novelTemplate int) []features.Event {
	out := make([]features.Event, len(stream))
	copy(out, stream)
	for i := lo; i < hi && i < len(out); i++ {
		out[i].Template = novelTemplate
	}
	return out
}

func TestVocabulary(t *testing.T) {
	streams := [][]features.Event{{
		{Template: 5}, {Template: 5}, {Template: 5},
		{Template: 7}, {Template: 7},
		{Template: 9},
	}}
	v := BuildVocabulary(streams, 3)
	if v.Size() != 3 {
		t.Fatalf("Size=%d", v.Size())
	}
	if v.Known() != 2 {
		t.Fatalf("Known=%d", v.Known())
	}
	if v.Class(5) != 0 || v.Class(7) != 1 {
		t.Fatalf("frequency order broken: %d %d", v.Class(5), v.Class(7))
	}
	// 9 overflows the capacity → other; unseen templates → other.
	if v.Class(9) != v.Other() || v.Class(1234) != v.Other() {
		t.Fatal("overflow/unseen should map to other")
	}
	if v.Other() != 2 {
		t.Fatalf("Other=%d", v.Other())
	}
}

func TestVocabularyAssignExtendsIntoSpareSlots(t *testing.T) {
	v := BuildVocabulary([][]features.Event{{{Template: 1}, {Template: 2}}}, 6)
	if v.Known() != 2 || v.Size() != 6 {
		t.Fatalf("initial: known=%d size=%d", v.Known(), v.Size())
	}
	// Post-update templates get fresh slots, existing ones keep theirs.
	before1 := v.Class(1)
	v.Assign([][]features.Event{{{Template: 10}, {Template: 10}, {Template: 11}}})
	if v.Class(1) != before1 {
		t.Fatal("existing slot moved")
	}
	if v.Class(10) == v.Other() || v.Class(11) == v.Other() {
		t.Fatal("new templates should get spare slots")
	}
	if v.Class(10) == v.Class(11) {
		t.Fatal("new templates should get distinct slots")
	}
	// Capacity exhaustion: only one slot left after 4 assignments.
	v.Assign([][]features.Event{{{Template: 20}, {Template: 21}}})
	if v.Known() != 5 { // capacity 6 → 5 assignable
		t.Fatalf("known=%d want 5", v.Known())
	}
	if v.Class(21) != v.Other() {
		t.Fatal("template beyond capacity must fold to other")
	}
}

func TestVocabularyDeterministicTieBreak(t *testing.T) {
	streams := [][]features.Event{{{Template: 3}, {Template: 1}, {Template: 2}}}
	a := BuildVocabulary(streams, 10)
	b := BuildVocabulary(streams, 10)
	for id := 1; id <= 3; id++ {
		if a.Class(id) != b.Class(id) {
			t.Fatal("vocabulary not deterministic")
		}
	}
	// Equal counts break ties by template ID.
	if a.Class(1) != 0 || a.Class(2) != 1 || a.Class(3) != 2 {
		t.Fatalf("tie-break wrong: %d %d %d", a.Class(1), a.Class(2), a.Class(3))
	}
}

func TestThresholdAndQuantiles(t *testing.T) {
	events := []ScoredEvent{
		{Time: d0, VPE: "a", Score: 1},
		{Time: d0.Add(time.Minute), VPE: "a", Score: 5},
		{Time: d0.Add(2 * time.Minute), VPE: "b", Score: 3},
	}
	anoms := Threshold(events, 2.5)
	if len(anoms) != 2 {
		t.Fatalf("anomalies: %+v", anoms)
	}
	if q := ScoreQuantile(events, 0); q != 1 {
		t.Fatalf("q0=%v", q)
	}
	if q := ScoreQuantile(events, 1); q != 5 {
		t.Fatalf("q1=%v", q)
	}
	if ScoreQuantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestThresholdSweep(t *testing.T) {
	var events []ScoredEvent
	for i := 0; i < 100; i++ {
		events = append(events, ScoredEvent{Time: d0, VPE: "a", Score: float64(i)})
	}
	thrs := ThresholdSweep(events, 10)
	if len(thrs) < 5 {
		t.Fatalf("sweep too small: %v", thrs)
	}
	for i := 1; i < len(thrs); i++ {
		if thrs[i] <= thrs[i-1] {
			t.Fatalf("sweep not increasing: %v", thrs)
		}
	}
	if thrs[0] < 49 {
		t.Fatalf("sweep should cover the upper half: %v", thrs)
	}
	if ThresholdSweep(events, 1) != nil || ThresholdSweep(nil, 10) != nil {
		t.Fatal("degenerate sweeps should be nil")
	}
}

func TestClusterWarnings(t *testing.T) {
	anoms := []Anomaly{
		// Cluster of 3 on vpe-a.
		{Time: d0, VPE: "a"},
		{Time: d0.Add(20 * time.Second), VPE: "a"},
		{Time: d0.Add(50 * time.Second), VPE: "a"},
		// Isolated on vpe-a (2 min later): dropped (size 1).
		{Time: d0.Add(3 * time.Minute), VPE: "a"},
		// Pair on vpe-b.
		{Time: d0.Add(time.Hour), VPE: "b"},
		{Time: d0.Add(time.Hour + 30*time.Second), VPE: "b"},
	}
	ws := ClusterWarnings(anoms, DefaultClusterWindow, DefaultMinClusterSize)
	if len(ws) != 2 {
		t.Fatalf("warnings: %+v", ws)
	}
	if ws[0].VPE != "a" || ws[0].Size != 3 || !ws[0].Time.Equal(d0) {
		t.Fatalf("warning 0: %+v", ws[0])
	}
	if ws[1].VPE != "b" || ws[1].Size != 2 {
		t.Fatalf("warning 1: %+v", ws[1])
	}
}

func TestClusterWarningsUnsortedInput(t *testing.T) {
	anoms := []Anomaly{
		{Time: d0.Add(30 * time.Second), VPE: "a"},
		{Time: d0, VPE: "a"},
	}
	ws := ClusterWarnings(anoms, time.Minute, 2)
	if len(ws) != 1 || !ws[0].Time.Equal(d0) {
		t.Fatalf("unsorted input mishandled: %+v", ws)
	}
}

func TestClusterWarningsEmpty(t *testing.T) {
	if ws := ClusterWarnings(nil, time.Minute, 2); len(ws) != 0 {
		t.Fatalf("empty: %+v", ws)
	}
}

func smallLSTMConfig() LSTMConfig {
	cfg := DefaultLSTMConfig()
	cfg.Hidden = []int{16}
	cfg.MaxVocab = 12
	cfg.WindowLen = 16
	cfg.Stride = 8
	cfg.Epochs = 6
	cfg.OverSampleRounds = 1
	cfg.MaxWindowsPerEpoch = 0
	return cfg
}

func TestLSTMDetectorFlagsNovelTemplates(t *testing.T) {
	train := [][]features.Event{cyclicStream(600, 4, time.Minute)}
	d := NewLSTMDetector(smallLSTMConfig())
	if err := d.Train(train); err != nil {
		t.Fatal(err)
	}
	test := withAnomaly(cyclicStream(200, 4, time.Minute), 100, 103, 99)
	scored := d.Score("vpe00", test)
	if len(scored) != 200 {
		t.Fatalf("scored %d events", len(scored))
	}
	// Normal-region scores must sit well below anomalous-region scores.
	var normalMax float64
	for i := 10; i < 90; i++ {
		if scored[i].Score > normalMax {
			normalMax = scored[i].Score
		}
	}
	anomalous := scored[100].Score
	if anomalous <= normalMax {
		t.Fatalf("novel template score %v not above normal max %v", anomalous, normalMax)
	}
}

func TestLSTMDetectorScoreMetadata(t *testing.T) {
	train := [][]features.Event{cyclicStream(300, 3, time.Minute)}
	d := NewLSTMDetector(smallLSTMConfig())
	if err := d.Train(train); err != nil {
		t.Fatal(err)
	}
	stream := cyclicStream(50, 3, time.Minute)
	scored := d.Score("vpe07", stream)
	if scored[0].Score != 0 {
		t.Fatal("first event must have neutral score")
	}
	for i, s := range scored {
		if s.VPE != "vpe07" || !s.Time.Equal(stream[i].Time) {
			t.Fatalf("metadata broken at %d: %+v", i, s)
		}
	}
	if d.Name() != "lstm" {
		t.Fatal("name")
	}
}

func TestLSTMDetectorTrainErrors(t *testing.T) {
	d := NewLSTMDetector(smallLSTMConfig())
	if err := d.Train(nil); err == nil {
		t.Fatal("empty training should error")
	}
	if got := d.Score("v", cyclicStream(5, 2, time.Second)); got != nil {
		t.Fatal("untrained detector should return nil scores")
	}
}

func TestLSTMDetectorUpdateKeepsVocabulary(t *testing.T) {
	train := [][]features.Event{cyclicStream(300, 4, time.Minute)}
	d := NewLSTMDetector(smallLSTMConfig())
	if err := d.Train(train); err != nil {
		t.Fatal(err)
	}
	vocabBefore := d.vocab
	if err := d.Update([][]features.Event{cyclicStream(100, 4, time.Minute)}); err != nil {
		t.Fatal(err)
	}
	if d.vocab != vocabBefore {
		t.Fatal("Update must not rebuild the vocabulary")
	}
	// Update on an untrained detector falls back to Train.
	d2 := NewLSTMDetector(smallLSTMConfig())
	if err := d2.Update(train); err != nil {
		t.Fatal(err)
	}
	if d2.Model() == nil {
		t.Fatal("fallback train did not happen")
	}
}

// The transfer-learning scenario in miniature: after a distribution shift,
// Adapt on a short window of new data must cut false-alarm scores on the
// new normal, and must do so without touching the teacher's frozen bottom
// layer during fine-tuning.
func TestLSTMDetectorAdaptRecoversFromShift(t *testing.T) {
	cfg := smallLSTMConfig()
	cfg.Hidden = []int{16, 16}
	cfg.AdaptFreezeLayers = 1
	cfg.AdaptEpochs = 6
	d := NewLSTMDetector(cfg)
	// Old regime: cycle over templates 0-3.
	if err := d.Train([][]features.Event{cyclicStream(600, 4, time.Minute)}); err != nil {
		t.Fatal(err)
	}
	// New regime: cycle over templates 4-7 (all previously absent... but
	// within vocab because Train saw only 4 classes + other). Build the
	// new regime from a permuted old alphabet instead so it stays in-vocab:
	// cycle 3,2,1,0 — reversed order, same templates.
	newRegime := func(n int) []features.Event {
		out := make([]features.Event, n)
		for i := range out {
			out[i] = features.Event{Time: d0.Add(time.Duration(i) * time.Minute), Template: 3 - i%4}
		}
		return out
	}
	before := meanScore(d, newRegime(200))
	if err := d.Adapt([][]features.Event{newRegime(400)}); err != nil {
		t.Fatal(err)
	}
	after := meanScore(d, newRegime(200))
	if after >= before*0.8 {
		t.Fatalf("Adapt did not reduce new-regime scores: before %v after %v", before, after)
	}
}

func meanScore(d Detector, stream []features.Event) float64 {
	scored := d.Score("v", stream)
	var s float64
	for _, e := range scored[1:] {
		s += e.Score
	}
	return s / float64(len(scored)-1)
}

func TestAEDetectorFlagsNovelWindows(t *testing.T) {
	cfg := DefaultAEConfig()
	cfg.Hidden = []int{8, 4}
	cfg.Epochs = 20
	train := [][]features.Event{cyclicStream(2000, 4, 30*time.Second)}
	d := NewAEDetector(cfg)
	if err := d.Train(train); err != nil {
		t.Fatal(err)
	}
	if d.Name() != "autoencoder" {
		t.Fatal("name")
	}
	normal := d.Score("v", cyclicStream(400, 4, 30*time.Second))
	novel := d.Score("v", withAnomaly(cyclicStream(400, 4, 30*time.Second), 0, 400, 99))
	if len(normal) == 0 || len(novel) == 0 {
		t.Fatal("no windows scored")
	}
	if meanOf(novel) <= meanOf(normal)*1.5 {
		t.Fatalf("novel windows not separated: normal %v novel %v", meanOf(normal), meanOf(novel))
	}
}

func meanOf(events []ScoredEvent) float64 {
	var s float64
	for _, e := range events {
		s += e.Score
	}
	return s / float64(len(events))
}

func TestAEDetectorLifecycle(t *testing.T) {
	d := NewAEDetector(DefaultAEConfig())
	if err := d.Train(nil); err == nil {
		t.Fatal("empty training should error")
	}
	if d.Score("v", cyclicStream(10, 2, time.Second)) != nil {
		t.Fatal("untrained score should be nil")
	}
	train := [][]features.Event{cyclicStream(500, 4, time.Minute)}
	if err := d.Update(train); err != nil { // falls back to Train
		t.Fatal(err)
	}
	if err := d.Update(train); err != nil {
		t.Fatal(err)
	}
	if err := d.Adapt(train); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.net.Params() {
		if p.Frozen {
			t.Fatal("Adapt left layers frozen")
		}
	}
}

func TestOCSVMDetectorFlagsNovelWindows(t *testing.T) {
	train := [][]features.Event{cyclicStream(3000, 4, 20*time.Second)}
	d := NewOCSVMDetector(DefaultOCSVMConfig())
	if err := d.Train(train); err != nil {
		t.Fatal(err)
	}
	if d.Name() != "ocsvm" {
		t.Fatal("name")
	}
	normal := d.Score("v", cyclicStream(600, 4, 20*time.Second))
	novel := d.Score("v", withAnomaly(cyclicStream(600, 4, 20*time.Second), 0, 600, 99))
	if meanOf(novel) <= meanOf(normal) {
		t.Fatalf("novel windows not separated: normal %v novel %v", meanOf(normal), meanOf(novel))
	}
}

func TestOCSVMDetectorLifecycle(t *testing.T) {
	d := NewOCSVMDetector(DefaultOCSVMConfig())
	if err := d.Train(nil); err == nil {
		t.Fatal("empty training should error")
	}
	train := [][]features.Event{cyclicStream(800, 4, time.Minute)}
	if err := d.Update(train); err != nil { // fallback to Train
		t.Fatal(err)
	}
	if err := d.Update(train); err != nil {
		t.Fatal(err)
	}
	if err := d.Adapt(train); err != nil {
		t.Fatal(err)
	}
	// Reservoir respects its cap.
	if len(d.reservoir) > d.cfg.ReservoirSize {
		t.Fatalf("reservoir overflow: %d > %d", len(d.reservoir), d.cfg.ReservoirSize)
	}
}

func TestDetectorInterfaceCompliance(t *testing.T) {
	var _ Detector = NewLSTMDetector(DefaultLSTMConfig())
	var _ Detector = NewAEDetector(DefaultAEConfig())
	var _ Detector = NewOCSVMDetector(DefaultOCSVMConfig())
}

func BenchmarkLSTMScore(b *testing.B) {
	train := [][]features.Event{cyclicStream(500, 4, time.Minute)}
	cfg := smallLSTMConfig()
	cfg.Epochs = 1
	d := NewLSTMDetector(cfg)
	if err := d.Train(train); err != nil {
		b.Fatal(err)
	}
	stream := cyclicStream(1000, 4, time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Score("v", stream)
	}
}
