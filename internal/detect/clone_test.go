package detect

import (
	"testing"
	"time"

	"nfvpredict/internal/features"
)

// cloneTrainStreams builds a small deterministic training corpus.
func cloneTrainStreams(templates, events int) [][]features.Event {
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	var s []features.Event
	for i := 0; i < events; i++ {
		s = append(s, features.Event{Time: base.Add(time.Duration(i) * 30 * time.Second), Template: i % templates})
	}
	return [][]features.Event{s}
}

// TestCloneIndependence is the serving-safety property the lifecycle
// depends on: a clone scores identically to the original, and training the
// clone (Update and Adapt, including vocabulary extension) leaves the
// original's weights, vocabulary, and scores untouched.
func TestCloneIndependence(t *testing.T) {
	cfg := DefaultLSTMConfig()
	cfg.Hidden = []int{12}
	cfg.MaxVocab = 10
	cfg.Epochs = 2
	cfg.OverSampleRounds = 0
	det := NewLSTMDetector(cfg)
	if err := det.Train(cloneTrainStreams(4, 400)); err != nil {
		t.Fatal(err)
	}
	origFP := det.Fingerprint()
	if origFP == 0 {
		t.Fatal("trained detector fingerprints to 0")
	}

	cand := det.Clone()
	if cand.Fingerprint() != origFP {
		t.Fatal("clone does not fingerprint equal to its original")
	}
	score := func(d *LSTMDetector) []ScoredEvent {
		return d.Score("vpe01", cloneTrainStreams(4, 60)[0])
	}
	a, b := score(det), score(cand)
	for i := range a {
		if a[i].Score != b[i].Score {
			t.Fatalf("clone scores diverge at %d: %v vs %v", i, a[i].Score, b[i].Score)
		}
	}

	// Adapt the clone on a shifted distribution with unseen templates
	// (vocabulary extension) — the original must be bit-unchanged.
	if err := cand.Adapt(cloneTrainStreams(8, 400)); err != nil {
		t.Fatal(err)
	}
	if det.Fingerprint() != origFP {
		t.Fatal("adapting the clone mutated the original's weights")
	}
	if cand.Fingerprint() == origFP {
		t.Fatal("adaptation did not change the clone's weights")
	}
	if got := det.vocab.Known(); got != 4 {
		t.Fatalf("adapting the clone leaked vocabulary slots into the original: known=%d", got)
	}
	if cand.vocab.Known() <= 4 {
		t.Fatalf("clone vocabulary did not extend: known=%d", cand.vocab.Known())
	}
}

// TestCloneUntrained: cloning before Train yields an untrained detector
// that can itself be trained.
func TestCloneUntrained(t *testing.T) {
	det := NewLSTMDetector(DefaultLSTMConfig())
	c := det.Clone()
	if c.Fingerprint() != 0 || c.Model() != nil {
		t.Fatal("untrained clone is not untrained")
	}
	if err := c.Train(cloneTrainStreams(3, 200)); err != nil {
		t.Fatal(err)
	}
}
