package detect

import (
	"sort"

	"nfvpredict/internal/features"
)

// Vocabulary maps signature-tree template IDs to dense model class indices
// inside a fixed-capacity class space. The model's input/output width is
// the capacity, so templates first seen after a system update can be given
// fresh, never-trained slots during the next Update/Adapt call without
// resizing the network — the mechanism that keeps post-update "new normal"
// templates distinguishable from fault omens (which are excluded from
// clean training data and therefore keep mapping to the reserved "other"
// class).
//
// Slot assignment happens only on the single-threaded training paths
// (Train/Update/Adapt); Class is read-only and safe for the concurrent
// scoring fan-out.
type Vocabulary struct {
	index    map[int]int
	capacity int
}

// NewVocabulary returns an empty vocabulary with the given class capacity
// (minimum 2: one assignable slot plus "other").
func NewVocabulary(capacity int) *Vocabulary {
	if capacity < 2 {
		capacity = 2
	}
	return &Vocabulary{index: make(map[int]int), capacity: capacity}
}

// BuildVocabulary creates a vocabulary of the given capacity and assigns
// slots for the training streams' templates in frequency order.
func BuildVocabulary(streams [][]features.Event, capacity int) *Vocabulary {
	v := NewVocabulary(capacity)
	v.Assign(streams)
	return v
}

// Assign gives unassigned templates appearing in streams their own class
// slots, most frequent first, until capacity−1 slots are used (the last
// slot stays reserved for "other"). Assignment order is deterministic:
// frequency descending, template ID ascending.
func (v *Vocabulary) Assign(streams [][]features.Event) {
	counts := map[int]int{}
	for _, s := range streams {
		for _, e := range s {
			if _, ok := v.index[e.Template]; !ok {
				counts[e.Template]++
			}
		}
	}
	type tc struct{ id, n int }
	fresh := make([]tc, 0, len(counts))
	for id, n := range counts {
		fresh = append(fresh, tc{id, n})
	}
	sort.Slice(fresh, func(i, j int) bool {
		if fresh[i].n != fresh[j].n {
			return fresh[i].n > fresh[j].n
		}
		return fresh[i].id < fresh[j].id
	})
	for _, t := range fresh {
		if len(v.index) >= v.capacity-1 {
			break
		}
		v.index[t.id] = len(v.index)
	}
}

// Clone returns an independent copy of the vocabulary. Assign on the
// clone (a candidate detector absorbing post-update templates) must never
// leak slots into the original, which may be serving concurrently.
func (v *Vocabulary) Clone() *Vocabulary {
	out := &Vocabulary{index: make(map[int]int, len(v.index)), capacity: v.capacity}
	for k, c := range v.index {
		out.index[k] = c
	}
	return out
}

// Size returns the fixed class capacity (model width).
func (v *Vocabulary) Size() int { return v.capacity }

// Known returns the number of assigned template slots.
func (v *Vocabulary) Known() int { return len(v.index) }

// Other returns the index of the catch-all class.
func (v *Vocabulary) Other() int { return v.capacity - 1 }

// Class maps a template ID to its class index; unassigned templates map
// to the "other" class. Read-only.
func (v *Vocabulary) Class(template int) int {
	if c, ok := v.index[template]; ok {
		return c
	}
	return v.Other()
}
