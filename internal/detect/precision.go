package detect

import "nfvpredict/internal/nn"

// Precision re-exports the serving-path inference precision so monitor and
// lifecycle code can configure quantized serving without importing nn.
type Precision = nn.Precision

const (
	PrecisionF64  = nn.PrecisionF64
	PrecisionF32  = nn.PrecisionF32
	PrecisionInt8 = nn.PrecisionInt8
)

// ParsePrecision parses a -precision flag value (f64, f32, int8).
func ParsePrecision(s string) (Precision, error) { return nn.ParsePrecision(s) }

// SetPrecision selects the detector's serving inference engine. A trained
// model is re-packed immediately; an untrained detector just records the
// mode and packs when training produces a model. PrecisionF64 is the
// no-op fast path: nothing is packed and any stale engine is dropped.
// Training entry points (Train/Update/Adapt) invalidate the packed mirror
// before mutating weights and re-pack when done, so a stale quantized
// engine can never serve.
func (d *LSTMDetector) SetPrecision(p Precision) {
	d.precision.Store(uint32(p))
	d.repack()
}

// Precision reports the detector's configured serving precision.
func (d *LSTMDetector) Precision() Precision { return Precision(d.precision.Load()) }

// PackedBytes reports the packed-weight footprint of the active quantized
// engine (0 when serving f64 or untrained).
func (d *LSTMDetector) PackedBytes() int {
	if d.model == nil {
		return 0
	}
	return d.model.PackedBytes()
}

// repack synchronizes the model's packed engine with the configured
// precision. The f64 case only clears (a single atomic store, no pack
// work), which keeps Clone and the lifecycle's shadow paths free when
// quantized serving is off.
func (d *LSTMDetector) repack() {
	if d.model == nil {
		return
	}
	p := d.Precision()
	if p == PrecisionF64 {
		if d.model.Precision() != PrecisionF64 {
			d.model.InvalidatePacked()
		}
		return
	}
	d.model.SetPrecision(p)
}

// invalidatePacked drops the model's packed engine ahead of an in-place
// weight mutation.
func (d *LSTMDetector) invalidatePacked() {
	if d.model != nil && d.Precision() != PrecisionF64 {
		d.model.InvalidatePacked()
	}
}
