package detect

import (
	"fmt"
	"time"

	"nfvpredict/internal/features"
	"nfvpredict/internal/nn"
)

// LSTMStream scores one vPE's messages online, maintaining the model's
// recurrent state between calls — the runtime deployment mode the paper
// envisions: "a runtime predictive analysis system running in parallel
// with existing reactive monitoring systems" (§1, abstract).
//
// A stream is not safe for concurrent use; create one stream per vPE and
// serialize pushes per stream (the ingest server does both).
type LSTMStream struct {
	det     *LSTMDetector
	st      *nn.StreamState
	last    time.Time
	started bool
	pending nn.Token
}

// NewStream returns an online scorer bound to the detector's current
// model. Streams observe later model replacements (Update/Adapt) on their
// next push, since they read the detector's model pointer each time;
// recurrent state carries over, which matches a long-running monitor.
func (d *LSTMDetector) NewStream() *LSTMStream {
	if d.model == nil {
		return nil
	}
	return &LSTMStream{det: d, st: d.model.NewStreamState()}
}

// StreamSnapshot is the exported state of an LSTMStream: the model's
// recurrent state plus the streaming bookkeeping (pending token, last
// timestamp). It is plain data so the ingest layer can checkpoint per-vPE
// scoring state and restore it bit-identically after a restart.
type StreamSnapshot struct {
	Model   nn.StreamSnapshot
	Last    time.Time
	Started bool
	Pending nn.Token
}

// Snapshot copies the stream's state out.
func (s *LSTMStream) Snapshot() StreamSnapshot {
	return StreamSnapshot{
		Model:   s.st.Snapshot(),
		Last:    s.last,
		Started: s.started,
		Pending: s.pending,
	}
}

// RestoreStream rebuilds an online scorer from a snapshot taken against
// this detector's model architecture. Restoring against a model of a
// different shape (a retrained bundle with other layer widths) fails with
// a descriptive error; callers should fall back to a fresh stream.
func (d *LSTMDetector) RestoreStream(snap StreamSnapshot) (*LSTMStream, error) {
	if d.model == nil {
		return nil, fmt.Errorf("detect: cannot restore a stream on an untrained detector")
	}
	st, err := d.model.RestoreStreamState(snap.Model)
	if err != nil {
		return nil, fmt.Errorf("detect: restoring stream state: %w", err)
	}
	return &LSTMStream{
		det:     d,
		st:      st,
		last:    snap.Last,
		started: snap.Started,
		pending: snap.Pending,
	}, nil
}

// Push scores one event and advances the stream. The first event has no
// context and scores 0.
func (s *LSTMStream) Push(e features.Event) float64 {
	gap := 60.0
	if s.started {
		gap = e.Time.Sub(s.last).Seconds()
		if gap < 0 {
			gap = 0
		}
	}
	tok := nn.Token{ID: s.det.vocab.Class(e.Template), Gap: gap}
	var score float64
	if s.started {
		t0 := s.det.met.stepSeconds.Start()
		lp := s.det.model.StepLogProbs(s.pending, s.st)
		s.det.met.stepSeconds.ObserveDuration(t0)
		s.det.met.steps.Inc()
		score = -lp[tok.ID]
	}
	s.pending = tok
	s.last = e.Time
	s.started = true
	return score
}
