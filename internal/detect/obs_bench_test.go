package detect

import (
	"testing"
	"time"

	"nfvpredict/internal/features"
	"nfvpredict/internal/obs"
)

// benchDetector trains a small LSTM detector for the streaming benchmarks.
func benchDetector(b *testing.B) *LSTMDetector {
	b.Helper()
	cfg := DefaultLSTMConfig()
	cfg.Hidden = []int{32, 32}
	cfg.Epochs = 1
	cfg.OverSampleRounds = 0
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	var stream []features.Event
	for i := 0; i < 600; i++ {
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * 30 * time.Second), Template: i % 12})
	}
	d := NewLSTMDetector(cfg)
	if err := d.Train([][]features.Event{stream}); err != nil {
		b.Fatal(err)
	}
	return d
}

func benchStreamPush(b *testing.B, d *LSTMDetector) {
	st := d.NewStream()
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Push(features.Event{Time: base.Add(time.Duration(i) * 30 * time.Second), Template: i % 12})
	}
}

// BenchmarkStreamPush is the uninstrumented online-scoring hot path
// (StepLogProbs behind LSTMStream.Push).
func BenchmarkStreamPush(b *testing.B) {
	benchStreamPush(b, benchDetector(b))
}

// BenchmarkStreamPushInstrumented is the same path with a live registry
// attached: one step counter, one latency histogram (two clock reads).
// Comparing against BenchmarkStreamPush bounds the instrumentation
// overhead — the acceptance budget is ≤5% on a ~20µs step.
func BenchmarkStreamPushInstrumented(b *testing.B) {
	d := benchDetector(b)
	d.SetMetrics(obs.NewRegistry(), "")
	benchStreamPush(b, d)
}
