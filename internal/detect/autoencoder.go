package detect

import (
	"fmt"
	"math/rand"
	"time"

	"nfvpredict/internal/features"
	"nfvpredict/internal/nn"
)

// AEConfig parameterizes the Autoencoder baseline.
type AEConfig struct {
	// WindowWidth buckets the stream into fixed windows whose TF-IDF
	// vectors are the autoencoder inputs (Zhang et al. 2016).
	WindowWidth time.Duration
	// Hidden lists encoder widths; the decoder mirrors them.
	Hidden []int
	// Epochs, UpdateEpochs, AdaptEpochs control the three training modes.
	Epochs, UpdateEpochs, AdaptEpochs int
	// AdaptFreezeLayers is how many bottom dense layers stay frozen
	// during Adapt.
	AdaptFreezeLayers int
	// LR and Clip configure Adam.
	LR, Clip float64
	// MaxSamplesPerEpoch caps per-epoch training cost; 0 = no cap.
	MaxSamplesPerEpoch int
	// Seed drives initialization and shuffling.
	Seed int64
}

// DefaultAEConfig returns the baseline configuration.
func DefaultAEConfig() AEConfig {
	return AEConfig{
		WindowWidth:        10 * time.Minute,
		Hidden:             []int{32, 8},
		Epochs:             6,
		UpdateEpochs:       2,
		AdaptEpochs:        3,
		AdaptFreezeLayers:  1,
		LR:                 2e-3,
		Clip:               5,
		MaxSamplesPerEpoch: 6000,
		Seed:               1,
	}
}

// AEDetector is the Autoencoder baseline (§5.2): a bottleneck MLP trained
// to reconstruct TF-IDF window vectors of normal syslog; the anomaly
// score of a window is its reconstruction error.
type AEDetector struct {
	cfg AEConfig
	vec *features.Vectorizer
	net *nn.MLP
	opt *nn.Adam
	rng *rand.Rand
}

// NewAEDetector returns an untrained detector.
func NewAEDetector(cfg AEConfig) *AEDetector {
	if cfg.WindowWidth <= 0 {
		cfg.WindowWidth = 10 * time.Minute
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{32, 8}
	}
	return &AEDetector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Detector.
func (d *AEDetector) Name() string { return "autoencoder" }

func (d *AEDetector) windowsOf(streams [][]features.Event) []features.Window {
	var out []features.Window
	for _, s := range streams {
		out = append(out, features.Windowize(s, d.cfg.WindowWidth)...)
	}
	return out
}

// Train implements Detector: fit the TF-IDF vectorizer and train the
// bottleneck reconstruction.
func (d *AEDetector) Train(streams [][]features.Event) error {
	wins := d.windowsOf(streams)
	if len(wins) == 0 {
		return fmt.Errorf("detect: autoencoder training needs at least one window")
	}
	d.vec = features.NewVectorizer(true)
	d.vec.Fit(wins)
	d.net = nn.NewAutoencoder(d.vec.Dim(), d.cfg.Hidden, d.cfg.Seed)
	d.opt = nn.NewAdam(d.cfg.LR, d.cfg.Clip)
	d.epochs(wins, d.cfg.Epochs)
	return nil
}

// Update implements Detector: incremental reconstruction training on the
// fresh windows with the frozen vocabulary.
func (d *AEDetector) Update(streams [][]features.Event) error {
	if d.net == nil {
		return d.Train(streams)
	}
	d.epochs(d.windowsOf(streams), d.cfg.UpdateEpochs)
	return nil
}

// Adapt implements Detector: clone, freeze the encoder bottom, fine-tune.
func (d *AEDetector) Adapt(streams [][]features.Event) error {
	if d.net == nil {
		return d.Train(streams)
	}
	student := d.net.Clone()
	student.FreezeBottomLayers(d.cfg.AdaptFreezeLayers)
	d.net = student
	d.opt = nn.NewAdam(d.cfg.LR, d.cfg.Clip)
	d.epochs(d.windowsOf(streams), d.cfg.AdaptEpochs)
	for _, p := range d.net.Params() {
		p.Frozen = false
	}
	return nil
}

func (d *AEDetector) epochs(wins []features.Window, n int) {
	if len(wins) == 0 {
		return
	}
	for e := 0; e < n; e++ {
		idx := d.rng.Perm(len(wins))
		cap := len(idx)
		if d.cfg.MaxSamplesPerEpoch > 0 && cap > d.cfg.MaxSamplesPerEpoch {
			cap = d.cfg.MaxSamplesPerEpoch
		}
		for _, i := range idx[:cap] {
			x := d.vec.Transform(wins[i])
			d.net.TrainReconstruction(x)
			d.opt.Step(d.net.Params())
		}
	}
}

// Score implements Detector: every message carries its window's
// reconstruction error. Per-message stamping (rather than one event per
// window) keeps window methods compatible with the §5.1 warning rule —
// a burst of anomalous messages inside one bad window still forms a
// cluster of ≥2 anomalies within a minute.
func (d *AEDetector) Score(vpe string, stream []features.Event) []ScoredEvent {
	if d.net == nil || len(stream) == 0 {
		return nil
	}
	wins := features.Windowize(stream, d.cfg.WindowWidth)
	scores := make(map[int64]float64, len(wins))
	for _, w := range wins {
		scores[w.Start.UnixNano()] = d.net.ReconstructionError(d.vec.Transform(w))
	}
	out := make([]ScoredEvent, len(stream))
	for i, e := range stream {
		out[i] = ScoredEvent{
			Time:  e.Time,
			VPE:   vpe,
			Score: scores[e.Time.Truncate(d.cfg.WindowWidth).UnixNano()],
		}
	}
	return out
}
