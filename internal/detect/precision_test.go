package detect

import (
	"math"
	"testing"
	"time"

	"nfvpredict/internal/features"
)

// trainedPrecisionDetector trains a small deterministic detector on a
// cyclic 3-template stream.
func trainedPrecisionDetector(t *testing.T) (*LSTMDetector, []features.Event) {
	t.Helper()
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	var stream []features.Event
	for i := 0; i < 600; i++ {
		stream = append(stream, features.Event{
			Time:     base.Add(time.Duration(i) * 20 * time.Second),
			Template: i % 3,
		})
	}
	cfg := DefaultLSTMConfig()
	cfg.Hidden = []int{12}
	cfg.MaxVocab = 8
	cfg.Epochs = 3
	cfg.OverSampleRounds = 0
	d := NewLSTMDetector(cfg)
	if err := d.Train([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	return d, stream
}

func TestSetPrecisionPacksTrainedModel(t *testing.T) {
	d, _ := trainedPrecisionDetector(t)
	if d.Precision() != PrecisionF64 || d.PackedBytes() != 0 {
		t.Fatalf("fresh detector should serve f64 unpacked: %v %d", d.Precision(), d.PackedBytes())
	}
	d.SetPrecision(PrecisionF32)
	if d.Precision() != PrecisionF32 || d.PackedBytes() == 0 {
		t.Fatalf("f32 pack missing: %v %d", d.Precision(), d.PackedBytes())
	}
	if got := d.Model().Precision(); got != PrecisionF32 {
		t.Fatalf("model engine precision = %v, want f32", got)
	}
	d.SetPrecision(PrecisionF64)
	if d.PackedBytes() != 0 || d.Model().Precision() != PrecisionF64 {
		t.Fatalf("f64 should drop the packed engine")
	}
}

func TestSetPrecisionUntrainedPacksOnTrain(t *testing.T) {
	cfg := DefaultLSTMConfig()
	cfg.Hidden = []int{12}
	cfg.MaxVocab = 8
	cfg.Epochs = 2
	cfg.OverSampleRounds = 0
	d := NewLSTMDetector(cfg)
	d.SetPrecision(PrecisionInt8) // records the mode; nothing to pack yet
	if d.PackedBytes() != 0 {
		t.Fatalf("untrained detector cannot have a packed engine")
	}
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	var stream []features.Event
	for i := 0; i < 400; i++ {
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * 20 * time.Second), Template: i % 3})
	}
	if err := d.Train([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	if d.Precision() != PrecisionInt8 || d.PackedBytes() == 0 {
		t.Fatalf("Train should pack the configured precision: %v %d", d.Precision(), d.PackedBytes())
	}
}

// TestClonePropagatesPrecisionWithoutPacking pins the clone fast path:
// the precision setting rides along (so a fine-tuned candidate re-packs
// itself when training completes) but the engine itself is never copied —
// clones exist to mutate the weights the engine mirrors.
func TestClonePropagatesPrecisionWithoutPacking(t *testing.T) {
	d, stream := trainedPrecisionDetector(t)
	d.SetPrecision(PrecisionF32)
	c := d.Clone()
	if c.Precision() != PrecisionF32 {
		t.Fatalf("clone lost the precision setting: %v", c.Precision())
	}
	if c.PackedBytes() != 0 {
		t.Fatalf("clone must not inherit a packed engine (stale after fine-tune)")
	}
	// Fine-tuning the clone re-packs it on completion.
	if err := c.Update([][]features.Event{stream[:200]}); err != nil {
		t.Fatal(err)
	}
	if c.PackedBytes() == 0 || c.Model().Precision() != PrecisionF32 {
		t.Fatalf("Update should re-pack the clone: %d %v", c.PackedBytes(), c.Model().Precision())
	}
	// The f64 clone path stays a true no-op: no engine anywhere.
	d.SetPrecision(PrecisionF64)
	if c2 := d.Clone(); c2.Precision() != PrecisionF64 || c2.PackedBytes() != 0 {
		t.Fatalf("f64 clone should carry no precision work")
	}
}

// TestUpdateRepacksFreshEngine pins the staleness invariant: after an
// in-place weight mutation (Update), the packed engine serves the NEW
// weights. A stale engine would score with pre-update weights and diverge
// from the f64 reference far beyond the f32 error budget.
func TestUpdateRepacksFreshEngine(t *testing.T) {
	d, stream := trainedPrecisionDetector(t)
	d.SetPrecision(PrecisionF32)
	if err := d.Update([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	if d.PackedBytes() == 0 {
		t.Fatalf("Update dropped the packed engine without re-packing")
	}
	// Reference: same post-update weights served at f64 (Clone copies the
	// updated master; setting f64 precision serves it unquantized).
	ref := d.Clone()
	ref.SetPrecision(PrecisionF64)
	got := d.Score("vpe", stream[:100])
	want := ref.Score("vpe", stream[:100])
	if len(got) != len(want) {
		t.Fatalf("score lengths diverged: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if diff := math.Abs(got[i].Score - want[i].Score); diff > 2e-2 {
			t.Fatalf("step %d: quantized score %v vs f64 %v (diff %v) — stale packed engine?",
				i, got[i].Score, want[i].Score, diff)
		}
	}
}

// TestAdaptRepacksStudent covers the transfer-adaptation path: Adapt
// replaces the model with a fine-tuned student; the packed engine must
// follow it.
func TestAdaptRepacksStudent(t *testing.T) {
	d, stream := trainedPrecisionDetector(t)
	d.SetPrecision(PrecisionInt8)
	before := d.Fingerprint()
	if err := d.Adapt([][]features.Event{stream[:300]}); err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint() == before {
		t.Fatalf("Adapt did not change the weights (test premise broken)")
	}
	if d.PackedBytes() == 0 || d.Model().Precision() != PrecisionInt8 {
		t.Fatalf("Adapt must re-pack the student: %d %v", d.PackedBytes(), d.Model().Precision())
	}
}
