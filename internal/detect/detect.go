// Package detect implements the paper's anomaly detectors behind one
// interface: the LSTM next-template likelihood detector (§4.2, the primary
// contribution), and the Autoencoder and one-class-SVM baselines (§5.2).
// All three support the customization/adaptation protocol of §4.3 —
// initial training, monthly incremental updates, and fast transfer-
// learning adaptation after a system update — so the Figure 6 comparison
// is apples-to-apples ("for a fair comparison, we applied the same
// customization and adaptation mechanisms on all three approaches").
//
// Detectors emit per-event anomaly scores; thresholding and the ≥2-within-
// a-minute warning-clustering rule (§5.1) live here too, shared by every
// method.
package detect

import (
	"sort"
	"time"

	"nfvpredict/internal/features"
)

// ScoredEvent is one detector observation: higher Score = more anomalous.
type ScoredEvent struct {
	// Time is the event (message or window) timestamp.
	Time time.Time
	// VPE names the router the event belongs to.
	VPE string
	// Score is the anomaly score on the detector's own scale.
	Score float64
}

// Detector is the common interface of all three methods.
type Detector interface {
	// Name identifies the method ("lstm", "autoencoder", "ocsvm").
	Name() string
	// Train fits the detector from scratch on per-vPE normal streams.
	Train(streams [][]features.Event) error
	// Update performs a monthly incremental (online) update (§4.3).
	Update(streams [][]features.Event) error
	// Adapt performs the fast post-update recovery: copy the teacher,
	// fine-tune the top layers on a short window of fresh data (§4.3).
	Adapt(streams [][]features.Event) error
	// Score returns anomaly scores for one vPE's event stream.
	Score(vpe string, stream []features.Event) []ScoredEvent
}

// Anomaly is a thresholded scored event.
type Anomaly struct {
	Time time.Time
	VPE  string
}

// Threshold filters events with Score > thr into anomalies.
func Threshold(events []ScoredEvent, thr float64) []Anomaly {
	var out []Anomaly
	for _, e := range events {
		if e.Score > thr {
			out = append(out, Anomaly{Time: e.Time, VPE: e.VPE})
		}
	}
	return out
}

// Warning is a reported warning signature: a cluster of ≥MinClusterSize
// anomalies on one vPE within ClusterWindow (§5.1: tickets are preceded by
// at least two anomalies less than a minute apart, so the system "reports
// a warning signature upon detecting a small cluster of two or more
// anomalies").
type Warning struct {
	// VPE names the router.
	VPE string
	// Time is the first anomaly's timestamp in the cluster.
	Time time.Time
	// Size is the number of anomalies merged into this warning.
	Size int
}

// Clustering defaults from §5.1.
const (
	// DefaultClusterWindow is the max gap between anomalies in a cluster.
	DefaultClusterWindow = time.Minute
	// DefaultMinClusterSize is the minimum anomalies per warning.
	DefaultMinClusterSize = 2
)

// ClusterWarnings groups per-vPE anomalies into warning signatures: a new
// cluster starts when the gap to the previous anomaly exceeds window;
// clusters smaller than minSize are dropped.
func ClusterWarnings(anoms []Anomaly, window time.Duration, minSize int) []Warning {
	byVPE := make(map[string][]Anomaly)
	for _, a := range anoms {
		byVPE[a.VPE] = append(byVPE[a.VPE], a)
	}
	var out []Warning
	for vpe, as := range byVPE {
		sort.Slice(as, func(i, j int) bool { return as[i].Time.Before(as[j].Time) })
		start := 0
		for i := 1; i <= len(as); i++ {
			if i == len(as) || as[i].Time.Sub(as[i-1].Time) > window {
				if size := i - start; size >= minSize {
					out = append(out, Warning{VPE: vpe, Time: as[start].Time, Size: size})
				}
				start = i
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.Before(out[j].Time)
		}
		return out[i].VPE < out[j].VPE
	})
	return out
}

// ScoreQuantile returns the q-quantile (0..1) of the event scores, the
// standard way to place an operating threshold from a validation pass.
func ScoreQuantile(events []ScoredEvent, q float64) float64 {
	if len(events) == 0 {
		return 0
	}
	xs := make([]float64, len(events))
	for i, e := range events {
		xs[i] = e.Score
	}
	sort.Float64s(xs)
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	idx := int(q * float64(len(xs)))
	if idx >= len(xs) {
		idx = len(xs) - 1
	}
	return xs[idx]
}

// ThresholdSweep returns n thresholds spanning the score distribution of
// events, spaced by quantile so every operating region of the PRC is
// covered regardless of the method's score scale.
func ThresholdSweep(events []ScoredEvent, n int) []float64 {
	if n < 2 || len(events) == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	seen := map[float64]bool{}
	for i := 0; i < n; i++ {
		q := 0.5 + 0.5*float64(i)/float64(n-1) // sweep the upper half
		thr := ScoreQuantile(events, q)
		if !seen[thr] {
			out = append(out, thr)
			seen[thr] = true
		}
	}
	sort.Float64s(out)
	return out
}

// gapSeconds returns the inter-arrival gap of stream[i] in seconds.
func gapSeconds(stream []features.Event, i int) float64 {
	if i == 0 {
		return 60
	}
	return stream[i].Time.Sub(stream[i-1].Time).Seconds()
}
