// Package logfmt defines the syslog message model shared by the simulator,
// the ingestion server, and the analysis pipeline, with BSD-syslog
// (RFC 3164) wire formatting/parsing and a JSONL dataset codec for storing
// generated traces on disk.
package logfmt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// Severity is the syslog severity level (RFC 5424 §6.2.1).
type Severity int

// Syslog severities, most severe first.
const (
	Emergency Severity = iota
	Alert
	Critical
	Error
	Warning
	Notice
	Info
	Debug
)

// String returns the conventional severity keyword.
func (s Severity) String() string {
	names := [...]string{"emerg", "alert", "crit", "err", "warning", "notice", "info", "debug"}
	if s < 0 || int(s) >= len(names) {
		return fmt.Sprintf("severity(%d)", int(s))
	}
	return names[s]
}

// Facility is the syslog facility code (RFC 5424 §6.2.1).
type Facility int

// Common facilities used by router daemons.
const (
	FacKernel Facility = 0
	FacUser   Facility = 1
	FacDaemon Facility = 3
	FacAuth   Facility = 4
	FacLocal0 Facility = 16
	FacLocal7 Facility = 23
)

// TraceCtx is the observability context minted when a frame is accepted
// off the wire and carried with the message through the scoring pipeline.
// It is runtime-only state — never serialized to JSONL or the syslog wire
// form — so datasets round-trip unchanged. ID 0 means "untraced".
type TraceCtx struct {
	// ID is the trace identifier (obs.SpanID's integer form).
	ID uint64
	// Sampled marks messages chosen for full stage-clock instrumentation.
	Sampled bool
	// Accept is when the frame was accepted (before decode); span totals
	// are measured from here.
	Accept time.Time
	// DecodeNS is syslog parse time on the listener goroutine.
	DecodeNS int64
}

// Message is one syslog message as emitted by a (virtual or physical) PE
// router. Host carries the vPE name; Tag the emitting daemon.
type Message struct {
	// Time is the event time with full year (JSONL keeps it lossless;
	// the RFC 3164 wire form drops the year).
	Time time.Time `json:"t"`
	// Host is the emitting router, e.g. "vpe07".
	Host string `json:"host"`
	// Facility and Severity form the PRI value.
	Facility Facility `json:"fac"`
	Severity Severity `json:"sev"`
	// Tag is the daemon or process name, e.g. "rpd" or "chassisd".
	Tag string `json:"tag"`
	// Text is the free-form message body.
	Text string `json:"text"`
	// Trace is the runtime trace context (never serialized).
	Trace TraceCtx `json:"-"`
}

// Pri returns the RFC 3164 PRI value 8*facility + severity.
func (m *Message) Pri() int { return int(m.Facility)*8 + int(m.Severity) }

// Format3164 renders the message in BSD syslog format:
//
//	<PRI>Mmm dd hh:mm:ss host tag: text
func (m *Message) Format3164() string {
	return fmt.Sprintf("<%d>%s %s %s: %s", m.Pri(), m.Time.Format(time.Stamp), m.Host, m.Tag, m.Text)
}

// ErrBadFormat reports an unparseable syslog line.
var ErrBadFormat = errors.New("logfmt: malformed syslog line")

// Parse3164 parses a line produced by Format3164. RFC 3164 timestamps have
// no year, so the caller supplies one; the day-of-week ambiguity around
// New Year is resolved by picking the year that puts the timestamp closest
// to the reference. Host, Tag, and Text share line's memory (no copies).
func Parse3164(line string, year int) (Message, error) {
	return parse3164(line, year)
}

// Parse3164Bytes is Parse3164 over a raw frame, the ingest hot path: the
// PRI and timestamp are parsed in place and only the tail from the host
// onward is copied into the message — the line's sole copy, against the
// whole-line string conversion plus fmt.Sscanf scratch the string entry
// point used to cost per frame.
func Parse3164Bytes(line []byte, year int) (Message, error) {
	return parse3164(line, year)
}

// parse3164 is the shared RFC 3164 parser. Instantiated over string it
// slices without copying; over []byte each string(...) conversion is a
// copy, so conversions are kept to the timestamp field (15 bytes, parsed
// and dropped) and the single host+tag+text tail that outlives the call.
// The PRI field is parsed with parsePri — digits only, no fmt machinery.
func parse3164[T ~string | ~[]byte](line T, year int) (Message, error) {
	var m Message
	if len(line) < 5 || line[0] != '<' {
		return m, fmt.Errorf("%w: missing PRI in %q", ErrBadFormat, truncate(string(line)))
	}
	end := 0
	for i := 1; i < len(line) && i <= 4; i++ {
		if line[i] == '>' {
			end = i
			break
		}
	}
	if end < 2 {
		return m, fmt.Errorf("%w: bad PRI in %q", ErrBadFormat, truncate(string(line)))
	}
	pri := parsePri(line[1:end])
	if pri < 0 || pri > 191 {
		return m, fmt.Errorf("%w: bad PRI value in %q", ErrBadFormat, truncate(string(line)))
	}
	m.Facility = Facility(pri / 8)
	m.Severity = Severity(pri % 8)
	rest := line[end+1:]
	if len(rest) < len(time.Stamp)+1 {
		return m, fmt.Errorf("%w: short line %q", ErrBadFormat, truncate(string(line)))
	}
	ts, err := time.Parse(time.Stamp, string(rest[:len(time.Stamp)]))
	if err != nil {
		return m, fmt.Errorf("%w: bad timestamp in %q: %v", ErrBadFormat, truncate(string(line)), err)
	}
	m.Time = ts.AddDate(year, 0, 0)
	rest = rest[len(time.Stamp):]
	if len(rest) > 0 && rest[0] == ' ' {
		rest = rest[1:]
	}
	// host tag: text — find the boundaries first, convert the tail once.
	sp := -1
	for i := 0; i < len(rest); i++ {
		if rest[i] == ' ' {
			sp = i
			break
		}
	}
	if sp <= 0 {
		return m, fmt.Errorf("%w: missing host in %q", ErrBadFormat, truncate(string(line)))
	}
	colon := -1
	for i := sp + 1; i+1 < len(rest); i++ {
		if rest[i] == ':' && rest[i+1] == ' ' {
			colon = i
			break
		}
	}
	if colon <= sp+1 {
		return m, fmt.Errorf("%w: missing tag in %q", ErrBadFormat, truncate(string(line)))
	}
	tail := string(rest)
	m.Host = tail[:sp]
	m.Tag = tail[sp+1 : colon]
	m.Text = tail[colon+2:]
	return m, nil
}

// parsePri parses the digits between '<' and '>': 1–3 ASCII digits, no
// sign, no whitespace. -1 means malformed. (The RFC allows nothing else;
// this replaces a fmt.Sscanf that allocated per frame and tolerated
// trailing junk.)
func parsePri[T ~string | ~[]byte](digits T) int {
	v := 0
	for i := 0; i < len(digits); i++ {
		b := digits[i]
		if b < '0' || b > '9' {
			return -1
		}
		v = v*10 + int(b-'0')
	}
	return v
}

func truncate(s string) string {
	if len(s) > 64 {
		return s[:64] + "…"
	}
	return s
}

// Writer streams messages to an io.Writer as JSON lines.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewWriter returns a JSONL writer; call Flush when done.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one message.
func (w *Writer) Write(m *Message) error {
	if err := w.enc.Encode(m); err != nil {
		return fmt.Errorf("logfmt: encoding message: %w", err)
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams messages from a JSONL stream.
type Reader struct {
	sc *bufio.Scanner
}

// NewReader returns a JSONL reader over r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Reader{sc: sc}
}

// Read returns the next message, or io.EOF when the stream ends.
func (r *Reader) Read() (Message, error) {
	var m Message
	for {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				return m, fmt.Errorf("logfmt: reading dataset: %w", err)
			}
			return m, io.EOF
		}
		line := strings.TrimSpace(r.sc.Text())
		if line == "" {
			continue
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			return m, fmt.Errorf("logfmt: decoding message: %w", err)
		}
		return m, nil
	}
}

// ReadAll consumes the stream and returns all messages.
func (r *Reader) ReadAll() ([]Message, error) {
	var out []Message
	for {
		m, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
}
