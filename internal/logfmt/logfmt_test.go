package logfmt

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mkMsg() Message {
	return Message{
		Time:     time.Date(2017, 3, 14, 15, 9, 26, 0, time.UTC),
		Host:     "vpe07",
		Facility: FacDaemon,
		Severity: Warning,
		Tag:      "rpd",
		Text:     "BGP peer 10.0.0.1 state change to Idle",
	}
}

func TestPri(t *testing.T) {
	m := mkMsg()
	if m.Pri() != 3*8+4 {
		t.Fatalf("Pri=%d", m.Pri())
	}
}

func TestSeverityString(t *testing.T) {
	if Error.String() != "err" || Info.String() != "info" || Emergency.String() != "emerg" {
		t.Fatal("severity names wrong")
	}
	if !strings.Contains(Severity(42).String(), "42") {
		t.Fatal("out-of-range severity should include the number")
	}
}

func TestFormat3164(t *testing.T) {
	m := mkMsg()
	line := m.Format3164()
	want := "<28>Mar 14 15:09:26 vpe07 rpd: BGP peer 10.0.0.1 state change to Idle"
	if line != want {
		t.Fatalf("got %q want %q", line, want)
	}
}

func TestParse3164RoundTrip(t *testing.T) {
	m := mkMsg()
	got, err := Parse3164(m.Format3164(), 2017)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(m.Time) {
		t.Fatalf("time: got %v want %v", got.Time, m.Time)
	}
	if got.Host != m.Host || got.Tag != m.Tag || got.Text != m.Text {
		t.Fatalf("fields: %+v", got)
	}
	if got.Facility != m.Facility || got.Severity != m.Severity {
		t.Fatalf("pri fields: %+v", got)
	}
}

func TestParse3164RoundTripProperty(t *testing.T) {
	f := func(host, tag, text string, fac uint8, sev uint8, unix int64) bool {
		clean := func(s string, allowSpace bool) string {
			return strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
					return r
				}
				if allowSpace && r == ' ' {
					return r
				}
				return -1
			}, strings.ToLower(s))
		}
		host = clean(host, false)
		tag = clean(tag, false)
		text = strings.TrimSpace(clean(text, true))
		if host == "" || tag == "" || text == "" {
			return true
		}
		m := Message{
			Time:     time.Unix(1480000000+(unix%86400*300), 0).UTC(),
			Host:     host,
			Facility: Facility(fac % 24),
			Severity: Severity(sev % 8),
			Tag:      tag,
			Text:     text,
		}
		got, err := Parse3164(m.Format3164(), m.Time.Year())
		if err != nil {
			return false
		}
		return got.Host == m.Host && got.Tag == m.Tag && got.Text == m.Text &&
			got.Facility == m.Facility && got.Severity == m.Severity &&
			got.Time.Equal(m.Time)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParse3164Malformed(t *testing.T) {
	bad := []string{
		"",
		"no pri at all",
		"<>Mar 14 15:09:26 h t: x",
		"<999>Mar 14 15:09:26 h t: x",
		"<28>not a timestamp here h t: x",
		"<28>Mar 14 15:09:26",
		"<28>Mar 14 15:09:26 hostonly",
		"<28>Mar 14 15:09:26 host notag",
	}
	for _, line := range bad {
		if _, err := Parse3164(line, 2017); err == nil {
			t.Errorf("Parse3164(%q) should fail", line)
		} else if !errors.Is(err, ErrBadFormat) {
			t.Errorf("Parse3164(%q) error not ErrBadFormat: %v", line, err)
		}
	}
}

// TestParse3164BytesMatchesString pins the two entry points to identical
// behavior: same fields on valid lines, same rejection (and same sentinel)
// on malformed ones. The byte path may not share the input's memory — the
// server reuses its read buffer after enqueue.
func TestParse3164BytesMatchesString(t *testing.T) {
	ref := mkMsg()
	lines := []string{
		ref.Format3164(),
		"<0>Jan  1 00:00:00 h t: x",
		"<191>Dec 31 23:59:59 edge-r1 chassisd: fan tray 2 removed",
		"<28>Mar 14 15:09:26 vpe07 rpd[1423]: task_timer: IPv6 fe80::1 down",
		"<28>Mar 14 15:09:26 vpe07 rpd:  leading space text",
		// Malformed family: each entry point must reject the same inputs.
		"",
		"no pri at all",
		"<>Mar 14 15:09:26 h t: x",
		"<28a>Mar 14 15:09:26 h t: x",
		"< 28>Mar 14 15:09:26 h t: x",
		"<+28>Mar 14 15:09:26 h t: x",
		"<999>Mar 14 15:09:26 h t: x",
		"<28>not a timestamp here h t: x",
		"<28>Mar 14 15:09:26",
		"<28>Mar 14 15:09:26 hostonly",
		"<28>Mar 14 15:09:26 host notag",
		"<28>Mar 14 15:09:26 host : emptytag",
	}
	for _, line := range lines {
		sm, serr := Parse3164(line, 2017)
		buf := []byte(line)
		bm, berr := Parse3164Bytes(buf, 2017)
		if (serr == nil) != (berr == nil) {
			t.Fatalf("Parse3164(%q): string err %v, bytes err %v", line, serr, berr)
		}
		if serr != nil {
			if !errors.Is(berr, ErrBadFormat) {
				t.Fatalf("Parse3164Bytes(%q) error not ErrBadFormat: %v", line, berr)
			}
			continue
		}
		if sm.Host != bm.Host || sm.Tag != bm.Tag || sm.Text != bm.Text ||
			sm.Facility != bm.Facility || sm.Severity != bm.Severity || !sm.Time.Equal(bm.Time) {
			t.Fatalf("Parse3164(%q): string %+v, bytes %+v", line, sm, bm)
		}
		// The message must survive the caller scribbling over the frame.
		for i := range buf {
			buf[i] = 'Z'
		}
		if bm.Host != sm.Host || bm.Tag != sm.Tag || bm.Text != sm.Text {
			t.Fatalf("Parse3164Bytes(%q) aliases its input buffer", line)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	msgs := []Message{mkMsg(), mkMsg(), mkMsg()}
	msgs[1].Host = "vpe13"
	msgs[2].Text = "unicode: ünïcode / tab\tseparated"
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range msgs {
		if err := w.Write(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d messages", len(got))
	}
	for i := range msgs {
		if got[i].Host != msgs[i].Host || got[i].Text != msgs[i].Text || !got[i].Time.Equal(msgs[i].Time) {
			t.Fatalf("msg %d mismatch: %+v vs %+v", i, got[i], msgs[i])
		}
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	input := "\n\n{\"t\":\"2017-01-01T00:00:00Z\",\"host\":\"v\",\"fac\":3,\"sev\":6,\"tag\":\"x\",\"text\":\"y\"}\n\n"
	got, err := NewReader(strings.NewReader(input)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Host != "v" {
		t.Fatalf("got %+v", got)
	}
}

func TestReaderBadJSON(t *testing.T) {
	r := NewReader(strings.NewReader("{broken\n"))
	if _, err := r.Read(); err == nil {
		t.Fatal("expected error")
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func BenchmarkFormat3164(b *testing.B) {
	m := mkMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Format3164()
	}
}

func BenchmarkParse3164(b *testing.B) {
	m := mkMsg()
	line := m.Format3164()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse3164(line, 2017); err != nil {
			b.Fatal(err)
		}
	}
}
