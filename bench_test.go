// Figure-regeneration benchmarks: one benchmark per figure/table of the
// paper's evaluation (see DESIGN.md §4 for the index). Each benchmark
// regenerates its figure's data series via internal/figures — the same
// code path as cmd/figures — and reports the headline values as custom
// benchmark metrics, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the entire evaluation. Heavy model benchmarks run the full
// walk-forward pipeline; with the default -benchtime they execute once.
package nfvpredict

import (
	"io"
	"sync"
	"testing"
	"time"

	"nfvpredict/internal/eval"
	"nfvpredict/internal/figures"
	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/pipeline"
	"nfvpredict/internal/ticket"
)

// statsEnv lazily generates the measurement-study fleet (38 vPEs + 8
// pPEs over 18 months) shared by the Figure 1-3 benchmarks.
var statsEnv struct {
	once sync.Once
	cfg  nfvsim.Config
	tr   *nfvsim.Trace
	ds   *pipeline.Dataset
}

func statsTrace(b *testing.B) (*nfvsim.Trace, nfvsim.Config) {
	b.Helper()
	statsEnv.once.Do(func() {
		statsEnv.cfg = figures.StatsSimConfig()
		d, err := nfvsim.New(statsEnv.cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := d.Generate()
		if err != nil {
			b.Fatal(err)
		}
		statsEnv.tr = tr
	})
	if statsEnv.tr == nil {
		b.Fatal("stats trace unavailable")
	}
	return statsEnv.tr, statsEnv.cfg
}

func statsDataset(b *testing.B) *pipeline.Dataset {
	b.Helper()
	tr, cfg := statsTrace(b)
	if statsEnv.ds == nil {
		statsEnv.ds = pipeline.BuildDataset(tr, cfg.Start, cfg.Months)
	}
	return statsEnv.ds
}

// modelEnv lazily builds the model fleet (10 vPEs over 10 months with an
// update in month 7) shared by the Figure 5-8 benchmarks.
var modelEnv struct {
	once sync.Once
	cfg  nfvsim.Config
	pcfg pipeline.Config
	ds   *pipeline.Dataset
}

func modelDataset(b *testing.B) (*pipeline.Dataset, pipeline.Config, nfvsim.Config) {
	b.Helper()
	modelEnv.once.Do(func() {
		modelEnv.cfg = figures.ModelSimConfig()
		modelEnv.pcfg = figures.ModelPipelineConfig()
		d, err := nfvsim.New(modelEnv.cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := d.Generate()
		if err != nil {
			b.Fatal(err)
		}
		modelEnv.ds = pipeline.BuildDataset(tr, modelEnv.cfg.Start, modelEnv.cfg.Months)
	})
	if modelEnv.ds == nil {
		b.Fatal("model dataset unavailable")
	}
	return modelEnv.ds, modelEnv.pcfg, modelEnv.cfg
}

// BenchmarkFig1aTicketTypes regenerates Figure 1(a): the monthly mix of
// ticket root causes. Reported metric: maintenance share (paper: the
// dominant category).
func BenchmarkFig1aTicketTypes(b *testing.B) {
	tr, cfg := statsTrace(b)
	var maintShare float64
	for i := 0; i < b.N; i++ {
		rows := figures.Fig1a(io.Discard, tr, cfg.Start, cfg.Months)
		var maint, total int
		for _, mb := range rows {
			maint += mb.Counts[ticket.Maintenance]
			total += mb.Total
		}
		maintShare = float64(maint) / float64(total)
	}
	b.ReportMetric(maintShare, "maint-share")
}

// BenchmarkFig1bInterArrival regenerates Figure 1(b): the CDF of
// non-duplicated ticket inter-arrival. Reported metrics: the paper's
// three checkpoints.
func BenchmarkFig1bInterArrival(b *testing.B) {
	tr, _ := statsTrace(b)
	var cps [3]float64
	for i := 0; i < b.N; i++ {
		_, cps = figures.Fig1b(io.Discard, tr)
	}
	b.ReportMetric(cps[0], "under-40min")
	b.ReportMetric(cps[1], "over-10h")
	b.ReportMetric(cps[2], "over-1000h")
}

// BenchmarkFig2TicketMatrix regenerates Figure 2: ticket occurrences
// across time and vPEs. Reported metric: the max vPEs sharing one day bin
// (the fleet-wide core-router incidents).
func BenchmarkFig2TicketMatrix(b *testing.B) {
	tr, cfg := statsTrace(b)
	var maxBin int
	for i := 0; i < b.N; i++ {
		_, maxBin = figures.Fig2(io.Discard, tr, cfg.Start, cfg.Months)
	}
	b.ReportMetric(float64(maxBin), "max-vpes-per-bin")
}

// BenchmarkFig3CosineSimilarity regenerates Figure 3: per-vPE cosine
// similarity to the fleet aggregate. Reported metrics: fraction of vPEs
// above 0.8 (paper ~1/3) and count below 0.5 (paper: 5).
func BenchmarkFig3CosineSimilarity(b *testing.B) {
	ds := statsDataset(b)
	var above08, below05 int
	var n int
	for i := 0; i < b.N; i++ {
		medians := figures.Fig3(io.Discard, ds)
		above08, below05, n = 0, 0, len(medians)
		for _, m := range medians {
			if m > 0.8 {
				above08++
			}
			if m < 0.5 {
				below05++
			}
		}
	}
	b.ReportMetric(float64(above08)/float64(n), "frac-above-0.8")
	b.ReportMetric(float64(below05), "vpes-below-0.5")
}

// BenchmarkUpdateShift regenerates the §3.3 observation: month-over-month
// cosine similarity collapses at the system update.
func BenchmarkUpdateShift(b *testing.B) {
	ds := statsDataset(b)
	tr, cfg := statsTrace(b)
	var pre, at float64
	for i := 0; i < b.N; i++ {
		pre, at = figures.UpdateShift(io.Discard, ds, tr, cfg.UpdateMonth)
	}
	b.ReportMetric(pre, "pre-update-min-cos")
	b.ReportMetric(at, "pre-vs-post-cos")
}

// BenchmarkVPEvsPPEVolume regenerates the §2 observation: vPE syslogs are
// ~77% smaller than pPE syslogs.
func BenchmarkVPEvsPPEVolume(b *testing.B) {
	tr, _ := statsTrace(b)
	var reduction float64
	for i := 0; i < b.N; i++ {
		reduction = figures.Volume(io.Discard, tr)
	}
	b.ReportMetric(reduction, "vpe-volume-reduction")
}

// BenchmarkFig5PRCWindows regenerates Figure 5: PRCs for 1 h / 1 day /
// 2 day predictive windows (paper: converges at 1 day; operating point
// P=0.80 R=0.81).
func BenchmarkFig5PRCWindows(b *testing.B) {
	ds, pcfg, _ := modelDataset(b)
	var best map[time.Duration]eval.PRPoint
	for i := 0; i < b.N; i++ {
		var err error
		best, err = figures.Fig5(io.Discard, ds, pcfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(best[time.Hour].F, "F-1h")
	b.ReportMetric(best[24*time.Hour].F, "F-1day")
	b.ReportMetric(best[48*time.Hour].F, "F-2day")
	b.ReportMetric(best[24*time.Hour].Precision, "P-1day")
	b.ReportMetric(best[24*time.Hour].Recall, "R-1day")
	b.ReportMetric(best[24*time.Hour].FalseAlarmsPerDay, "fa-per-day")
}

// BenchmarkFig6Methods regenerates Figure 6: LSTM vs Autoencoder vs
// one-class SVM, all with customization+adaptation (paper: LSTM P≈0.82 >
// AE P≈0.77 >> OC-SVM).
func BenchmarkFig6Methods(b *testing.B) {
	ds, pcfg, _ := modelDataset(b)
	var best map[pipeline.Method]eval.PRPoint
	for i := 0; i < b.N; i++ {
		var err error
		best, err = figures.Fig6(io.Discard, ds, pcfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(best[pipeline.MethodLSTM].F, "F-lstm")
	b.ReportMetric(best[pipeline.MethodAutoencoder].F, "F-autoencoder")
	b.ReportMetric(best[pipeline.MethodOCSVM].F, "F-ocsvm")
	b.ReportMetric(best[pipeline.MethodLSTM].Precision, "P-lstm")
	b.ReportMetric(best[pipeline.MethodAutoencoder].Precision, "P-autoencoder")
}

// BenchmarkFig7Components regenerates Figure 7: monthly F-measure of the
// three system variants across the horizon, including the update dip and
// the adaptation recovery.
func BenchmarkFig7Components(b *testing.B) {
	ds, pcfg, simCfg := modelDataset(b)
	var series map[pipeline.Variant][]pipeline.MonthMetrics
	for i := 0; i < b.N; i++ {
		var err error
		series, err = figures.Fig7(io.Discard, ds, pcfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mean F after the update month: the adaptation gain.
	meanAfter := func(v pipeline.Variant) float64 {
		var s float64
		var n int
		for _, mm := range series[v] {
			if mm.Index > simCfg.UpdateMonth {
				s += mm.Best.F
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	b.ReportMetric(meanAfter(pipeline.Baseline), "post-update-F-baseline")
	b.ReportMetric(meanAfter(pipeline.Customized), "post-update-F-cust")
	b.ReportMetric(meanAfter(pipeline.CustomizedAdaptive), "post-update-F-adapt")
}

// BenchmarkFig8TicketTypes regenerates Figure 8: detection rates per
// root cause at the five lead-time offsets (paper @0min: Circuit 0.74 >
// Software 0.55 > Cable 0.40 > Hardware 0.28; ALL @+15min ≈ 0.80).
func BenchmarkFig8TicketTypes(b *testing.B) {
	ds, pcfg, _ := modelDataset(b)
	var tds []eval.TypeDetection
	for i := 0; i < b.N; i++ {
		var err error
		tds, err = figures.Fig8(io.Discard, ds, pcfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, td := range tds {
		if td.All {
			b.ReportMetric(td.Rates[4], "ALL-at-plus15min")
			continue
		}
		switch td.Cause {
		case ticket.Circuit:
			b.ReportMetric(td.Rates[2], "circuit-at-0min")
		case ticket.Hardware:
			b.ReportMetric(td.Rates[2], "hardware-at-0min")
		case ticket.Software:
			b.ReportMetric(td.Rates[2], "software-at-0min")
		case ticket.Cable:
			b.ReportMetric(td.Rates[2], "cable-at-0min")
		}
	}
}

// BenchmarkTrainingDataReduction regenerates the §5.2 reductions:
// clustering (initial training 3 months → 1 month) and transfer learning
// (update recovery 3 months → 1 week). It uses its own fleet with an
// early update so three months of post-update data exist for the
// scratch-retrain arms.
func BenchmarkTrainingDataReduction(b *testing.B) {
	simCfg := figures.ReductionSimConfig()
	pcfg := figures.ModelPipelineConfig()
	d, err := nfvsim.New(simCfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := d.Generate()
	if err != nil {
		b.Fatal(err)
	}
	ds := pipeline.BuildDataset(tr, simCfg.Start, simCfg.Months)
	var clusterRows, adaptRows []pipeline.ExperimentRow
	for i := 0; i < b.N; i++ {
		var err error
		clusterRows, adaptRows, err = figures.Reduction(io.Discard, ds, pcfg, simCfg.UpdateMonth-1, simCfg.UpdateMonth)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range clusterRows {
		switch r.Label {
		case "per-vPE 1mo":
			b.ReportMetric(r.Best.F, "F-pervpe-1mo")
		case "per-vPE 3mo":
			b.ReportMetric(r.Best.F, "F-pervpe-3mo")
		default:
			if len(r.Label) > 9 && r.Label[:9] == "clustered" {
				b.ReportMetric(r.Best.F, "F-clustered-1mo")
			}
		}
	}
	for _, r := range adaptRows {
		switch r.Label {
		case "teacher (no recovery)":
			b.ReportMetric(r.Best.F, "F-no-recovery")
		case "transfer adapt 1wk":
			b.ReportMetric(r.Best.F, "F-adapt-1wk")
		case "retrain 1wk":
			b.ReportMetric(r.Best.F, "F-retrain-1wk")
		case "retrain 2mo":
			b.ReportMetric(r.Best.F, "F-retrain-2mo")
		}
	}
}

// BenchmarkEndToEndSmallFleet measures the full public-API path (simulate
// → dataset → walk-forward analysis) on the small example fleet.
func BenchmarkEndToEndSmallFleet(b *testing.B) {
	simCfg := SmallSimConfig()
	simCfg.NumVPEs = 4
	simCfg.Months = 3
	simCfg.UpdateMonth = -1
	cfg := DefaultConfig()
	cfg.LSTM.Hidden = []int{16}
	cfg.LSTM.Epochs = 1
	cfg.LSTM.OverSampleRounds = 0
	cfg.LSTM.MaxWindowsPerEpoch = 500
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace, err := Simulate(simCfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := AnalyzeTrace(trace, simCfg.Start, simCfg.Months, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
