// Package nfvpredict is a from-scratch Go reproduction of "Predictive
// Analysis in Network Function Virtualization" (Li et al., IMC 2018): an
// LSTM-based anomaly-detection system over virtualized-provider-edge (vPE)
// router syslogs whose detected anomalies serve as early warnings for
// network trouble tickets.
//
// The package exposes the complete system the paper describes plus every
// substrate it needs (see DESIGN.md for the inventory):
//
//   - a deterministic NFV deployment simulator standing in for the
//     paper's proprietary 18-month, 38-vPE production dataset;
//   - signature-tree log-template extraction (Qiu et al., IMC 2010);
//   - a pure-Go neural-network library (stacked LSTMs with BPTT, dense
//     autoencoders, Adam/SGD) replacing the Keras/TensorFlow stack;
//   - K-means vPE clustering with modularity-based K selection (§4.3);
//   - the three detectors of Figure 6 (LSTM, Autoencoder, one-class SVM)
//     behind one interface, all supporting monthly incremental updates
//     and transfer-learning adaptation;
//   - the walk-forward evaluation protocol with anomaly→ticket mapping
//     (Figure 4), PRC sweeps (Figures 5-6), the monthly F-measure series
//     (Figure 7), and per-root-cause lead-time rates (Figure 8);
//   - a live syslog ingestion server (UDP + RFC 6587 TCP) and online
//     monitor for the runtime deployment mode the paper envisions.
//
// # Quickstart
//
//	simCfg := nfvpredict.SmallSimConfig()
//	trace, _ := nfvpredict.Simulate(simCfg)
//	sys, _ := nfvpredict.AnalyzeTrace(trace, simCfg.Start, simCfg.Months, nfvpredict.DefaultConfig())
//	fmt.Println(sys.Report())
//
// See examples/ for runnable programs and bench_test.go for the harness
// that regenerates every figure of the paper's evaluation.
package nfvpredict

import (
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/eval"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/pipeline"
	"nfvpredict/internal/sigtree"
	"nfvpredict/internal/ticket"
)

// ---------------------------------------------------------------------
// Simulation (the substrate standing in for the proprietary ISP data).
// ---------------------------------------------------------------------

// SimConfig parameterizes the simulated NFV deployment.
type SimConfig = nfvsim.Config

// Trace is a generated deployment history: syslog plus trouble tickets.
type Trace = nfvsim.Trace

// DefaultSimConfig mirrors the paper's scale: 38 vPEs over 18 months with
// a system update around month 14.
func DefaultSimConfig() SimConfig { return nfvsim.DefaultConfig() }

// SmallSimConfig is a laptop-fast fleet for examples and smoke tests.
func SmallSimConfig() SimConfig { return nfvsim.TestConfig() }

// Simulate generates a deployment trace. Equal configs (including Seed)
// produce identical traces.
func Simulate(cfg SimConfig) (*Trace, error) {
	d, err := nfvsim.New(cfg)
	if err != nil {
		return nil, err
	}
	return d.Generate()
}

// ---------------------------------------------------------------------
// Dataset (template extraction + month bookkeeping).
// ---------------------------------------------------------------------

// Dataset is a trace transformed for analysis: per-vPE template-event
// streams via the signature tree, month boundaries, and tickets.
type Dataset = pipeline.Dataset

// NewDataset builds a Dataset from a trace.
func NewDataset(tr *Trace, start time.Time, months int) *Dataset {
	return pipeline.BuildDataset(tr, start, months)
}

// NewDatasetFromMessages builds a Dataset from raw messages (e.g. loaded
// from a JSONL file written by cmd/loggen).
func NewDatasetFromMessages(msgs []Message, tickets []Ticket, vpes []string, start time.Time, months int) *Dataset {
	return pipeline.BuildDatasetFromMessages(msgs, tickets, vpes, start, months)
}

// ---------------------------------------------------------------------
// Analysis pipeline (the paper's system).
// ---------------------------------------------------------------------

// Config parameterizes an analysis run.
type Config = pipeline.Config

// Variant selects a Figure 7 system configuration.
type Variant = pipeline.Variant

// The three variants compared in Figure 7.
const (
	Baseline           = pipeline.Baseline
	Customized         = pipeline.Customized
	CustomizedAdaptive = pipeline.CustomizedAdaptive
)

// Method selects the detector family of Figure 6.
type Method = pipeline.Method

// The three methods compared in Figure 6.
const (
	MethodLSTM        = pipeline.MethodLSTM
	MethodAutoencoder = pipeline.MethodAutoencoder
	MethodOCSVM       = pipeline.MethodOCSVM
)

// Result is a full walk-forward run outcome.
type Result = pipeline.Result

// MonthMetrics is one month of the Figure 7 series.
type MonthMetrics = pipeline.MonthMetrics

// ExperimentRow is one configuration's outcome in a §5.2 micro-benchmark.
type ExperimentRow = pipeline.ExperimentRow

// DefaultConfig returns the paper-faithful LSTM system configuration with
// customization and adaptation enabled.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// Run executes the paper's walk-forward protocol (§5.1): train on month 0,
// then for each later month score it with the models trained so far and
// update (or adapt) afterwards.
func Run(ds *Dataset, cfg Config) (*Result, error) { return pipeline.Run(ds, cfg) }

// TrainingDataSweep reproduces the §5.2 clustering claim (initial training
// data reduced from 3 months to 1 month).
func TrainingDataSweep(ds *Dataset, cfg Config, evalMonth int) ([]ExperimentRow, error) {
	return pipeline.TrainingDataSweep(ds, cfg, evalMonth)
}

// AdaptRecoverySweep reproduces the §5.2 transfer-learning claim (update
// recovery reduced from 3 months to 1 week).
func AdaptRecoverySweep(ds *Dataset, cfg Config, updateMonth int) ([]ExperimentRow, error) {
	return pipeline.AdaptRecoverySweep(ds, cfg, updateMonth)
}

// PredictiveWindowSweep reproduces Figure 5 (PRCs for 1 h / 1 day / 2 day
// predictive periods) over an existing run's scored events.
func PredictiveWindowSweep(ds *Dataset, res *Result, cfg Config, windows []time.Duration) map[time.Duration][]PRPoint {
	return pipeline.PredictiveWindowSweep(ds, res, cfg, windows)
}

// ---------------------------------------------------------------------
// Evaluation types.
// ---------------------------------------------------------------------

// EvalConfig sets the anomaly→ticket mapping parameters (Figure 4).
type EvalConfig = eval.Config

// Metrics bundles precision / recall / F-measure / false alarms per day.
type Metrics = eval.Metrics

// PRPoint is one operating point of a precision-recall curve.
type PRPoint = eval.PRPoint

// Outcome is a full anomaly→ticket mapping result.
type Outcome = eval.Outcome

// TypeDetection is one Figure 8 row (per-cause lead-time rates).
type TypeDetection = eval.TypeDetection

// DetectionByType computes the Figure 8 data from a mapping outcome.
func DetectionByType(o *Outcome, tickets []Ticket, from, to time.Time) []TypeDetection {
	return eval.DetectionByType(o, tickets, from, to)
}

// BestF returns the best-F operating point of a PR curve (§5.2).
func BestF(curve []PRPoint) PRPoint { return eval.BestF(curve) }

// AUCPR returns the area under a precision-recall curve.
func AUCPR(curve []PRPoint) float64 { return eval.AUCPR(curve) }

// ---------------------------------------------------------------------
// Detectors and streaming.
// ---------------------------------------------------------------------

// Detector is the common interface of the three methods.
type Detector = detect.Detector

// LSTMConfig configures the paper's primary LSTM detector.
type LSTMConfig = detect.LSTMConfig

// LSTMDetector is the LSTM next-template likelihood detector (§4.2).
type LSTMDetector = detect.LSTMDetector

// Warning is a reported warning signature (≥2 anomalies within a minute).
type Warning = detect.Warning

// ScoredEvent is one detector observation.
type ScoredEvent = detect.ScoredEvent

// NewLSTMDetector returns an untrained LSTM detector.
func NewLSTMDetector(cfg LSTMConfig) *LSTMDetector { return detect.NewLSTMDetector(cfg) }

// DefaultLSTMConfig mirrors the paper's 2-LSTM + 1-dense architecture.
func DefaultLSTMConfig() LSTMConfig { return detect.DefaultLSTMConfig() }

// MonitorConfig configures the online monitor.
type MonitorConfig = ingest.MonitorConfig

// Monitor scores live syslog and emits warning signatures.
type Monitor = ingest.Monitor

// ServerConfig configures the syslog ingestion server.
type ServerConfig = ingest.ServerConfig

// SyslogServer receives syslog over UDP and TCP (RFC 6587 framing).
type SyslogServer = ingest.Server

// NewMonitor builds an online monitor from a signature tree and a trained
// LSTM detector.
func NewMonitor(cfg MonitorConfig, tree *SignatureTree, det *LSTMDetector, onWarning func(Warning)) *Monitor {
	return ingest.NewMonitor(cfg, tree, det, onWarning)
}

// DefaultMonitorConfig returns the §5.1 warning-clustering parameters.
func DefaultMonitorConfig() MonitorConfig { return ingest.DefaultMonitorConfig() }

// NewSyslogServer creates an ingestion server delivering parsed messages
// to sink.
func NewSyslogServer(cfg ServerConfig, sink func(Message)) (*SyslogServer, error) {
	return ingest.NewServer(cfg, sink)
}

// DefaultServerConfig returns loopback-friendly listener defaults.
func DefaultServerConfig() ServerConfig { return ingest.DefaultServerConfig() }

// ---------------------------------------------------------------------
// Data model re-exports.
// ---------------------------------------------------------------------

// Message is one syslog message.
type Message = logfmt.Message

// Ticket is one trouble ticket.
type Ticket = ticket.Ticket

// TicketStore is an immutable ticket collection with the Figure 1-2
// analytics.
type TicketStore = ticket.Store

// RootCause is a ticket root-cause category.
type RootCause = ticket.RootCause

// SignatureTree extracts log templates from raw syslog text.
type SignatureTree = sigtree.Tree

// NewSignatureTree returns an empty signature tree.
func NewSignatureTree() *SignatureTree { return sigtree.New() }

// NewTicketStore wraps tickets in a store sorted by report time.
func NewTicketStore(ts []Ticket) *TicketStore { return ticket.NewStore(ts) }

// SignatureStat aggregates warning anomalies by log template (§5.3).
type SignatureStat = pipeline.SignatureStat

// pipelineSignatureSummary is an internal indirection used by System.
func pipelineSignatureSummary(ds *Dataset, res *Result, cfg Config) []SignatureStat {
	return pipeline.SignatureSummary(ds, res, cfg)
}
