module nfvpredict

go 1.22
