// Ablation benchmarks for the design choices DESIGN.md calls out: each
// arm runs the full walk-forward pipeline on a common small fleet with one
// ingredient changed, reporting best-F per arm as a custom metric.
//
//	go test -bench=Ablation -benchtime=1x .
package nfvpredict

import (
	"sync"
	"testing"

	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/pipeline"
)

// ablationEnv shares one small dataset across ablation arms.
var ablationEnv struct {
	once sync.Once
	ds   *pipeline.Dataset
}

func ablationDataset(b *testing.B) *pipeline.Dataset {
	b.Helper()
	ablationEnv.once.Do(func() {
		cfg := nfvsim.TestConfig()
		cfg.NumVPEs = 8
		cfg.Months = 4
		cfg.UpdateMonth = -1 // isolate detector quality from drift handling
		cfg.MeanFaultGapHours = 220
		d, err := nfvsim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := d.Generate()
		if err != nil {
			b.Fatal(err)
		}
		ablationEnv.ds = pipeline.BuildDataset(tr, cfg.Start, cfg.Months)
	})
	if ablationEnv.ds == nil {
		b.Fatal("ablation dataset unavailable")
	}
	return ablationEnv.ds
}

func ablationConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Variant = pipeline.Customized
	cfg.LSTM.Hidden = []int{20}
	cfg.LSTM.MaxVocab = 72
	cfg.LSTM.Epochs = 2
	cfg.LSTM.OverSampleRounds = 1
	cfg.LSTM.MaxWindowsPerEpoch = 1200
	cfg.KMax = 5
	cfg.SweepPoints = 25
	return cfg
}

func runArm(b *testing.B, cfg pipeline.Config) float64 {
	b.Helper()
	res, err := pipeline.Run(ablationDataset(b), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Best.F
}

// BenchmarkAblationGapFeature ablates the inter-arrival gap input: the
// paper's tuples are (template, gap) (§4.2); without the gap the model
// sees only the template sequence.
func BenchmarkAblationGapFeature(b *testing.B) {
	var withGap, withoutGap float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		cfg.LSTM.UseGap = true
		withGap = runArm(b, cfg)
		cfg.LSTM.UseGap = false
		withoutGap = runArm(b, cfg)
	}
	b.ReportMetric(withGap, "F-with-gap")
	b.ReportMetric(withoutGap, "F-no-gap")
}

// BenchmarkAblationOverSampling ablates the §4.2 minority-pattern
// over-sampling loop that suppresses false alarms on rare normal motifs.
func BenchmarkAblationOverSampling(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		cfg.LSTM.OverSampleRounds = 2
		with = runArm(b, cfg)
		cfg.LSTM.OverSampleRounds = 0
		without = runArm(b, cfg)
	}
	b.ReportMetric(with, "F-oversample")
	b.ReportMetric(without, "F-none")
}

// BenchmarkAblationWarningRule ablates the §5.1 clustering rule: raw
// anomalies as warnings (min size 1) versus the paper's ≥2-in-a-minute.
func BenchmarkAblationWarningRule(b *testing.B) {
	var single, pair float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		cfg.Eval.MinClusterSize = 1
		single = runArm(b, cfg)
		cfg.Eval.MinClusterSize = 2
		pair = runArm(b, cfg)
	}
	b.ReportMetric(pair, "F-cluster2")
	b.ReportMetric(single, "F-cluster1")
}

// BenchmarkAblationWindowLen sweeps the BPTT window length.
func BenchmarkAblationWindowLen(b *testing.B) {
	var f12, f24, f48 float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		cfg.LSTM.WindowLen, cfg.LSTM.Stride = 12, 6
		f12 = runArm(b, cfg)
		cfg.LSTM.WindowLen, cfg.LSTM.Stride = 24, 12
		f24 = runArm(b, cfg)
		cfg.LSTM.WindowLen, cfg.LSTM.Stride = 48, 24
		f48 = runArm(b, cfg)
	}
	b.ReportMetric(f12, "F-win12")
	b.ReportMetric(f24, "F-win24")
	b.ReportMetric(f48, "F-win48")
}

// BenchmarkAblationDepth compares one vs two LSTM layers (the paper uses
// two LSTM layers + one dense, §5.1, but reports insensitivity to
// parameter choices).
func BenchmarkAblationDepth(b *testing.B) {
	var one, two float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		cfg.LSTM.Hidden = []int{24}
		one = runArm(b, cfg)
		cfg.LSTM.Hidden = []int{24, 24}
		two = runArm(b, cfg)
	}
	b.ReportMetric(one, "F-1layer")
	b.ReportMetric(two, "F-2layer")
}
