GO ?= go

.PHONY: build test test-race ci chaos chaos-full scenarios bench bench-nn bench-pipeline bench-obs bench-serving bench-json figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths: data-parallel gradient
# workers, per-cluster training fan-out, concurrent scoring, shard worker
# lifecycle (start/stop/restart under concurrent enqueue), the ingest
# server (sink-panic recovery, close-during-frame), and the checkpoint /
# fault-injection suites.
test-race:
	$(GO) test -race ./internal/...

# Chaos soak (short, deterministic, race-enabled): replays the seed
# scenario through the full stack while injecting every fault type —
# checkpoint disk-full, torn spool writes, slow/panicking scorers,
# worker panics, a failing adaptation cycle (breaker arc), clock-skewed
# heartbeats, shed-learning — and asserts the resilience invariants:
# the monitor never exits, no checkpoint generation is lost, the breaker
# opens and recovers, and the post-soak warning sequence stays within
# the documented divergence bound of a fault-free reference run.
chaos:
	$(GO) test ./internal/chaos/ -run TestChaosSoakShort -race -count=1 -v

# Long soak: several rounds of the fault schedule over more hosts and
# shards. Not part of ci; run before cutting a release.
chaos-full:
	CHAOS_SOAK=full $(GO) test ./internal/chaos/ -run TestChaosSoakFull -race -count=1 -timeout 20m -v

# Scenario harness: lint every scenario in the shipped library, then run
# them end-to-end (simulate → train → serve over TCP → eval → assert).
# Each scenario is seconds of wall time; the whole library is the fast
# subset that ci runs. Assertion failures exit nonzero.
scenarios:
	$(GO) run ./cmd/nfvscen validate scenarios/
	$(GO) run ./cmd/nfvscen run scenarios/

# Full gate: what a CI job runs. Vet, build, the whole test suite, the
# race pass over the concurrent packages (which covers the shard
# lifecycle tests), the scenario-harness library (lint + end-to-end run
# of every shipped scenario with its assertions), the lifecycle soaks
# under -race (f64 and the
# quantized f32 engine — the latter proves the atomic engine swap on
# promotion is safe against concurrent scorers), the quantized-parity
# smoke (f32 warning-sequence parity, int8 FAR-delta gate, and the
# invalidate/re-pack staleness invariants), and benchmark smoke runs:
# the metrics hot path and the scoring kernels at every serving
# precision (f64/f32/int8 LSTM step, blocked matvec, packed f32 and
# int8 matvec). The hard 0 allocs/op assertions are
# TestHotPathAllocFree, TestScoringHotPathAllocFree, and
# TestQuantStepAllocFree, which run with the suite. The last two lines
# are the tracing-overhead gate: a smoke run of the traced/untraced
# HandleMessage pair plus TestSpanOverhead, which fails ci if span
# instrumentation costs more than 5% on the serving hot path.
ci: build
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) test-race
	$(MAKE) chaos
	$(MAKE) scenarios
	$(GO) test ./internal/lifecycle/ -run 'TestLifecycleSoakSmoke|TestLifecycleSoakQuantized' -race -count=1
	$(GO) test ./internal/ingest/ -run 'TestQuantF32WarningParity|TestQuantInt8FARDelta' -count=1
	$(GO) test ./internal/detect/ -run 'TestSetPrecision|TestClonePropagatesPrecision|TestUpdateRepacks|TestAdaptRepacks' -count=1
	$(GO) test ./internal/obs/ -run XXX -bench Registry -benchtime=1x -benchmem
	$(GO) test ./internal/nn/ -run XXX -bench 'StepLogProbs' -benchtime=1x -benchmem
	$(GO) test ./internal/mat/ -run XXX -bench 'MulMatAdd|MulVecAdd' -benchtime=1x -benchmem
	$(GO) test ./internal/ingest/ -run XXX -bench 'MonitorHandleMessage$$|MonitorHandleMessageSpans$$' -benchtime=1x -benchmem
	$(GO) test ./internal/ingest/ -run TestServingPathAllocGate -count=1 -v
	NFV_SPAN_GATE=1 $(GO) test ./internal/ingest/ -run TestSpanOverhead -count=1 -v

bench: bench-nn bench-pipeline bench-obs bench-serving

bench-nn:
	$(GO) test ./internal/nn/ -run XXX -bench . -benchmem

bench-pipeline:
	$(GO) test ./internal/pipeline/ -run XXX -bench . -benchmem -benchtime 3x

# Serving-path benchmarks: end-to-end HandleMessage cost, the paired
# sharded-throughput benchmark (shards=1/4/8 under RunParallel), and the
# serialized fraction (signature-tree learn under treeMu) that bounds
# multi-core scaling.
bench-serving:
	$(GO) test ./internal/ingest/ -run XXX -bench 'MonitorHandleMessage|MonitorParallel|ShardSerialSection|ShardTokenize' -benchmem

# Machine-readable serving benchmarks: runs the scoring-path benchmarks
# (monitor, tokenize-and-match old vs interned, batched LSTM step, matvec
# kernels) and converts the output to BENCH_serving.json via cmd/benchjson
# (ns/op, B/op, allocs/op, a derived msgs_per_sec = 1e9/ns for the
# per-message benchmarks, and b_per_op_delta against the committed
# BENCH_serving.json). The result lands in a temp file first so the old
# artifact is still readable as the baseline while the new one is built.
bench-json:
	{ $(GO) test ./internal/ingest/ -run XXX -bench 'MonitorHandleMessage|MonitorParallel|ShardSerialSection' -benchmem ; \
	  $(GO) test ./internal/sigtree/ -run XXX -bench 'PrepareTokens|SigtreeMatch' -benchmem ; \
	  $(GO) test ./internal/nn/ -run XXX -bench 'StepLogProbs' -benchmem ; \
	  $(GO) test ./internal/mat/ -run XXX -bench 'MulVecAdd|MulMatAdd' -benchmem ; \
	  $(GO) test ./internal/lifecycle/ -run XXX -bench 'AdaptationCycle' -benchmem -benchtime 5x ; \
	  $(GO) test ./internal/chaos/ -run XXX -bench 'ChaosSoak' -benchtime 1x ; } \
	| $(GO) run ./cmd/benchjson -baseline BENCH_serving.json > BENCH_serving.json.tmp
	mv BENCH_serving.json.tmp BENCH_serving.json
	@echo wrote BENCH_serving.json

figures:
	$(GO) run ./cmd/figures -fig all

bench-obs:
	$(GO) test ./internal/obs/ -run XXX -bench . -benchmem
	$(GO) test ./internal/detect/ -run XXX -bench StreamPush -benchmem -benchtime 20000x
