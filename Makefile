GO ?= go

.PHONY: build test test-race ci bench bench-nn bench-pipeline figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths: data-parallel gradient
# workers, per-cluster training fan-out, concurrent scoring, the ingest
# server (sink-panic recovery, close-during-frame), and the checkpoint /
# fault-injection suites.
test-race:
	$(GO) test -race ./internal/...

# Full gate: what a CI job runs. Vet, build, the whole test suite, and the
# race pass over the concurrent packages.
ci: build
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) test-race

bench: bench-nn bench-pipeline

bench-nn:
	$(GO) test ./internal/nn/ -run XXX -bench . -benchmem

bench-pipeline:
	$(GO) test ./internal/pipeline/ -run XXX -bench . -benchmem -benchtime 3x

figures:
	$(GO) run ./cmd/figures -fig all
