GO ?= go

.PHONY: build test test-race bench bench-nn bench-pipeline figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths: data-parallel gradient
# workers, per-cluster training fan-out, and concurrent scoring.
test-race:
	$(GO) test -race ./internal/...

bench: bench-nn bench-pipeline

bench-nn:
	$(GO) test ./internal/nn/ -run XXX -bench . -benchmem

bench-pipeline:
	$(GO) test ./internal/pipeline/ -run XXX -bench . -benchmem -benchtime 3x

figures:
	$(GO) run ./cmd/figures -fig all
