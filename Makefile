GO ?= go

.PHONY: build test test-race ci bench bench-nn bench-pipeline bench-obs figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent paths: data-parallel gradient
# workers, per-cluster training fan-out, concurrent scoring, the ingest
# server (sink-panic recovery, close-during-frame), and the checkpoint /
# fault-injection suites.
test-race:
	$(GO) test -race ./internal/...

# Full gate: what a CI job runs. Vet, build, the whole test suite, the
# race pass over the concurrent packages, and a benchmark smoke run that
# reports the metrics hot path's allocation counts (the hard 0 allocs/op
# assertion is TestHotPathAllocFree, which runs with the suite).
ci: build
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) test-race
	$(GO) test ./internal/obs/ -run XXX -bench Registry -benchtime=1x -benchmem

bench: bench-nn bench-pipeline bench-obs

bench-nn:
	$(GO) test ./internal/nn/ -run XXX -bench . -benchmem

bench-pipeline:
	$(GO) test ./internal/pipeline/ -run XXX -bench . -benchmem -benchtime 3x

figures:
	$(GO) run ./cmd/figures -fig all

bench-obs:
	$(GO) test ./internal/obs/ -run XXX -bench . -benchmem
	$(GO) test ./internal/detect/ -run XXX -bench StreamPush -benchmem -benchtime 20000x
