// Streaming: the runtime deployment mode of the paper — a live monitor
// fed by a syslog ingestion server. This example trains the LSTM on one
// simulated month, starts a UDP syslog listener on an ephemeral port,
// replays a later (update-free) month of the trace over real UDP packets,
// and prints the warning signatures the monitor raises.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"nfvpredict"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/pipeline"
)

func main() {
	// 1. Simulate a small fleet; month 0 is the training archive, month 1
	//    is the "live" traffic we will replay over the network.
	simCfg := nfvpredict.SmallSimConfig()
	simCfg.NumVPEs = 4
	simCfg.Months = 2
	simCfg.UpdateMonth = -1
	trace, err := nfvpredict.Simulate(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	ds := pipeline.BuildDataset(trace, simCfg.Start, simCfg.Months)

	// 2. Train the detector on clean month-0 streams (§4.2: syslog near
	//    tickets is excluded from "normal" training data).
	var streams [][]features.Event
	for _, v := range ds.VPEs {
		if ev := ds.CleanEvents(v, ds.MonthStart(0), ds.MonthStart(1), 72*time.Hour); len(ev) > 0 {
			streams = append(streams, ev)
		}
	}
	lcfg := detect.DefaultLSTMConfig()
	lcfg.Hidden = []int{24}
	det := detect.NewLSTMDetector(lcfg)
	if err := det.Train(streams); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector trained on %d vPE streams (%d templates)\n", len(streams), ds.Tree.Len())

	// 3. Start the monitor behind a UDP syslog server.
	warned := 0
	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = 6
	mon := ingest.NewMonitor(mcfg, ds.Tree, det, func(w nfvpredict.Warning) {
		warned++
		fmt.Printf("WARNING %s: %d anomalies clustering at %s\n", w.VPE, w.Size, w.Time.Format(time.RFC3339))
	})
	scfg := ingest.DefaultServerConfig()
	scfg.Year = simCfg.Start.Year()
	srv, err := ingest.NewServer(scfg, mon.HandleMessage)
	if err != nil {
		log.Fatal(err)
	}
	srv.Start(context.Background())
	defer srv.Close()
	fmt.Println("syslog server listening on", srv.UDPAddr())

	// 4. Replay month 1 of the trace as RFC 3164 datagrams.
	conn, err := net.Dial("udp", srv.UDPAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	sent := 0
	for i := range trace.Messages {
		m := &trace.Messages[i]
		if m.Time.Before(ds.MonthStart(1)) {
			continue
		}
		if _, err := fmt.Fprint(conn, m.Format3164()); err != nil {
			log.Fatal(err)
		}
		sent++
		if sent%200 == 0 {
			time.Sleep(5 * time.Millisecond) // pace the burst: UDP has no backpressure
		}
	}

	// 5. Wait for the pipeline to drain, then report.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		msgs, _ := mon.Counters()
		if int(msgs)+int(srv.Stats().Dropped) >= sent {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	msgs, anoms := mon.Counters()
	st := srv.Stats()
	fmt.Printf("\nreplayed %d messages over UDP: ingested=%d dropped=%d malformed=%d\n",
		sent, msgs, st.Dropped, st.Malformed)
	fmt.Printf("anomalies flagged: %d, warning signatures: %d\n", anoms, warned)
	fmt.Printf("tickets in the replayed month: %d\n",
		len(nfvpredict.NewTicketStore(trace.Tickets).Between(ds.MonthStart(1), ds.MonthStart(2))))
}
