// Quickstart: simulate a small vPE fleet, run the paper's full
// predictive-analysis pipeline on it, and print the evaluation report
// (operating point, monthly F-measure, Figure 8 table).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nfvpredict"
)

func main() {
	// A small deployment: 6 vPEs over 4 months, with a disruptive system
	// update rolling out in month 2 (the SmallSimConfig default).
	simCfg := nfvpredict.SmallSimConfig()
	fmt.Printf("simulating %d vPEs over %d months...\n", simCfg.NumVPEs, simCfg.Months)
	trace, err := nfvpredict.Simulate(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d syslog messages, %d trouble tickets\n\n", len(trace.Messages), len(trace.Tickets))

	// The paper's system: signature-tree templating, vPE clustering,
	// per-cluster LSTM models, monthly walk-forward with drift-triggered
	// transfer-learning adaptation.
	cfg := nfvpredict.DefaultConfig()
	cfg.LSTM.Hidden = []int{24} // small model: quickstart speed
	cfg.LSTM.MaxWindowsPerEpoch = 1500

	sys, err := nfvpredict.AnalyzeTrace(trace, simCfg.Start, simCfg.Months, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Report())

	// Individual early warnings: tickets whose first warning preceded the
	// ticket report (the paper's headline capability).
	fmt.Println("\nearly-warning examples:")
	n := 0
	for _, hit := range sys.Result.Outcome.Hits {
		if hit.EarliestOffset >= 0 || n >= 5 {
			continue
		}
		fmt.Printf("  %s ticket #%d (%s): first warning %v before the ticket report\n",
			hit.Ticket.VPE, hit.Ticket.ID, hit.Ticket.Cause, -hit.EarliestOffset)
		n++
	}
	if n == 0 {
		fmt.Println("  (none in this run)")
	}
}
