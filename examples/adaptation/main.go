// Adaptation: the §4.3 system-update scenario in isolation. A model is
// trained on the pre-update regime; the simulated fleet then receives a
// disruptive software update that changes its syslog distribution. The
// example quantifies the false-alarm storm on an obsolete model and
// compares three recoveries: transfer-learning adaptation on one week of
// data (the paper's method), scratch retraining on the same week, and
// scratch retraining on two months.
//
// Run with:
//
//	go run ./examples/adaptation
package main

import (
	"fmt"
	"log"

	"nfvpredict"
)

func main() {
	simCfg := nfvpredict.SmallSimConfig()
	simCfg.NumVPEs = 8
	simCfg.Months = 7
	simCfg.UpdateMonth = 2
	simCfg.UpdateFraction = 1.0
	trace, err := nfvpredict.Simulate(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	ds := nfvpredict.NewDataset(trace, simCfg.Start, simCfg.Months)
	fmt.Printf("fleet: %d vPEs, %d months, system update rolling out in month %d\n",
		simCfg.NumVPEs, simCfg.Months, simCfg.UpdateMonth)
	fmt.Printf("updated vPEs: %d of %d\n\n", len(trace.UpdateTimes), simCfg.NumVPEs)

	cfg := nfvpredict.DefaultConfig()
	cfg.LSTM.Hidden = []int{20}
	cfg.LSTM.MaxWindowsPerEpoch = 1500

	rows, err := nfvpredict.AdaptRecoverySweep(ds, cfg, simCfg.UpdateMonth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovery strategies evaluated on a fully post-update month:")
	fmt.Printf("%-24s %12s %8s %8s %8s\n", "strategy", "train-events", "P", "R", "F")
	for _, r := range rows {
		fmt.Printf("%-24s %12d %8.2f %8.2f %8.2f\n",
			r.Label, r.TrainEvents, r.Best.Precision, r.Best.Recall, r.Best.F)
	}
	fmt.Println("\npaper §4.3/§5.2: the obsolete model's false alarms grow ~14x after the update;")
	fmt.Println("transfer learning recovers with 1 week of data instead of the ~3 months a scratch")
	fmt.Println("retrain needs to collect.")
}
