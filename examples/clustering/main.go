// Clustering: the §4.3 vPE-grouping study. The simulator plants role
// archetypes in the fleet; this example shows that (a) per-vPE syslog
// distributions diverge from the fleet aggregate (Figure 3), (b) K-means
// with modularity-based K selection recovers the planted roles, and (c)
// pooling training data per cluster matches per-vPE training at a third
// of the data-collection cost (§5.2).
//
// Run with:
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"sort"

	"nfvpredict"
	"nfvpredict/internal/cluster"
)

func main() {
	simCfg := nfvpredict.SmallSimConfig()
	simCfg.NumVPEs = 12
	simCfg.Months = 5
	simCfg.UpdateMonth = -1
	trace, err := nfvpredict.Simulate(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	ds := nfvpredict.NewDataset(trace, simCfg.Start, simCfg.Months)

	// (a) Figure 3: similarity of each vPE's month-0 distribution to the
	// fleet aggregate.
	hists := make(map[string]cluster.Histogram, len(ds.VPEs))
	for _, v := range ds.VPEs {
		hists[v] = ds.MonthHistogram(v, 0)
	}
	sims := cluster.SimilarityToAggregate(hists)
	names := append([]string(nil), ds.VPEs...)
	sort.Slice(names, func(i, j int) bool { return sims[names[i]] < sims[names[j]] })
	fmt.Println("cosine similarity to the fleet aggregate (Figure 3):")
	for _, v := range names {
		fmt.Printf("  %-8s %.2f   (planted role %d)\n", v, sims[v], trace.RoleOf[v])
	}

	// (b) K-means with modularity-based K selection (§4.3).
	res, err := cluster.SelectK(hists, 1, 8, 128, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected K=%d (modularity score %.3f); planted archetypes: %d\n",
		res.K, res.Score, simCfg.RoleCount)
	for c := 0; c < res.K; c++ {
		members := res.Members(c)
		roles := map[int]int{}
		for _, v := range members {
			roles[trace.RoleOf[v]]++
		}
		fmt.Printf("  cluster %d: %v  planted-role mix %v\n", c, members, roles)
	}

	// (c) §5.2: data reduction from pooled per-cluster training.
	cfg := nfvpredict.DefaultConfig()
	cfg.LSTM.Hidden = []int{20}
	cfg.LSTM.MaxWindowsPerEpoch = 1200
	rows, err := nfvpredict.TrainingDataSweep(ds, cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntraining-data budget sweep (evaluated on the last month):")
	fmt.Printf("%-22s %12s %8s %8s %8s\n", "setup", "train-events", "P", "R", "F")
	for _, r := range rows {
		fmt.Printf("%-22s %12d %8.2f %8.2f %8.2f\n",
			r.Label, r.TrainEvents, r.Best.Precision, r.Best.Recall, r.Best.F)
	}
	fmt.Println("\npaper §5.2: clustering cuts initial training data from 3 months to 1 month.")
}
