package nfvpredict

import (
	"strings"
	"testing"

	"nfvpredict/internal/sigtree"
)

// oldPrepareTokens replicates the pre-interning tokenize-and-mask pipeline
// exactly as it shipped: every colon was a separator (the behavior the old
// Tokenize implemented, against its own comment), and masking lowercased
// with strings.ToLower. It is the oracle for the seed-scenario parity gate
// below.
func oldPrepareTokens(msg string) []string {
	fields := strings.FieldsFunc(msg, func(r rune) bool {
		switch r {
		case ' ', '\t', '\n', '\r', ',', '=', '[', ']', '(', ')', '"', ';', ':':
			return true
		}
		return false
	})
	toks := make([]string, 0, len(fields))
	for _, f := range fields {
		if sigtree.IsVariableToken(f) {
			toks = append(toks, sigtree.Wildcard)
		} else {
			toks = append(toks, strings.ToLower(f))
		}
	}
	if len(toks) == 0 {
		toks = []string{sigtree.Wildcard}
	}
	return toks
}

// TestSeedScenarioWarningParity is the behavioral gate on the tokenizer
// rework: over every message of the simulator's seed scenario, the new
// byte scanner (string and interned front ends both) must produce the
// same masked tokens and the same per-message template-ID sequence as the
// old colon-splitting tokenizer. Template IDs drive the LSTM event
// streams, which drive anomaly verdicts, which drive the §5.1 clustering
// rule — identical ID sequences mean the warning sequence is exactly
// preserved. (The colon rule only diverges on interior-colon tokens —
// IPv6, MACs, interface unit specs — which the seed corpus never emits;
// this test fails if either the corpus or the tokenizer drifts into
// disagreement.)
func TestSeedScenarioWarningParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed parity gate in -short mode")
	}
	simCfg := SmallSimConfig()
	simCfg.NumVPEs = 6
	simCfg.Months = 2
	simCfg.UpdateMonth = -1
	trace, err := Simulate(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Messages) == 0 {
		t.Fatal("seed scenario produced no messages")
	}
	treeOld := sigtree.New()
	treeNew := sigtree.New()
	treeSym := sigtree.New()
	var tb sigtree.TokenBuf
	for i := range trace.Messages {
		text := trace.Messages[i].Text
		oldToks := oldPrepareTokens(text)
		newToks := sigtree.PrepareTokens(text)
		if len(oldToks) != len(newToks) {
			t.Fatalf("msg %d %q: old tokens %v, new tokens %v", i, text, oldToks, newToks)
		}
		for k := range oldToks {
			if oldToks[k] != newToks[k] {
				t.Fatalf("msg %d %q: token %d: old %q, new %q", i, text, k, oldToks[k], newToks[k])
			}
		}
		idOld := treeOld.LearnTokens(oldToks).ID
		idNew := treeNew.LearnTokens(newToks).ID
		syms, ok := treeSym.PrepareSyms(text, &tb)
		if !ok {
			t.Fatalf("msg %d %q: symbol prepare failed on the seed corpus", i, text)
		}
		idSym := treeSym.LearnSyms(syms).ID
		if idOld != idNew || idNew != idSym {
			t.Fatalf("msg %d %q: template IDs diverged: old %d, new %d, interned %d",
				i, text, idOld, idNew, idSym)
		}
	}
	if fNew, fSym := treeNew.Fingerprint(), treeSym.Fingerprint(); fNew != fSym {
		t.Fatalf("string-path and interned-path trees diverged: %#x vs %#x", fNew, fSym)
	}
}
