package nfvpredict

import (
	"fmt"
	"strings"
	"time"

	"nfvpredict/internal/eval"
)

// System bundles a dataset, its configuration, and the completed analysis
// — the one-call entry point for applications that just want the paper's
// system run end to end.
type System struct {
	// Dataset is the analyzed dataset.
	Dataset *Dataset
	// Config is the configuration the run used.
	Config Config
	// Result is the walk-forward outcome.
	Result *Result
}

// AnalyzeTrace builds a dataset from the trace and runs the full
// walk-forward analysis.
func AnalyzeTrace(tr *Trace, start time.Time, months int, cfg Config) (*System, error) {
	ds := NewDataset(tr, start, months)
	res, err := Run(ds, cfg)
	if err != nil {
		return nil, err
	}
	return &System{Dataset: ds, Config: cfg, Result: res}, nil
}

// FigureEight computes the per-root-cause lead-time detection rates
// (Figure 8) for the run's operating point.
func (s *System) FigureEight() []TypeDetection {
	return DetectionByType(s.Result.Outcome, s.Dataset.Tickets,
		s.Dataset.MonthStart(1), s.Dataset.MonthStart(s.Dataset.Months))
}

// Report renders a human-readable summary: the operating point (§5.2),
// the monthly F-measure series (Figure 7), and the Figure 8 table.
func (s *System) Report() string {
	var b strings.Builder
	res := s.Result
	fmt.Fprintf(&b, "variant: %v   method: %s   clusters: K=%d\n",
		s.Config.Variant, methodName(s.Config.Method), res.Clusters.K)
	fmt.Fprintf(&b, "operating point: precision=%.2f recall=%.2f F=%.2f false-alarms/day=%.2f\n",
		res.Best.Precision, res.Best.Recall, res.Best.F, res.Best.FalseAlarmsPerDay)
	fmt.Fprintf(&b, "\nmonthly F-measure (walk-forward):\n")
	for _, mm := range res.Monthly {
		marker := ""
		if mm.Adapted {
			marker = "  [adapted]"
		}
		fmt.Fprintf(&b, "  %s  F=%.2f P=%.2f R=%.2f warnings=%-4d false-alarms=%-4d%s\n",
			mm.Month.Format("2006-01"), mm.Best.F, mm.Best.Precision, mm.Best.Recall,
			mm.Warnings, mm.FalseAlarms, marker)
	}
	fmt.Fprintf(&b, "\ndetection rate by ticket type (Figure 8):\n")
	fmt.Fprintf(&b, "  %-10s %8s", "type", "tickets")
	for _, name := range eval.LeadBucketNames {
		fmt.Fprintf(&b, " %7s", name)
	}
	b.WriteByte('\n')
	for _, td := range s.FigureEight() {
		label := td.Cause.String()
		if td.All {
			label = "ALL"
		}
		fmt.Fprintf(&b, "  %-10s %8d", label, td.Tickets)
		for _, r := range td.Rates {
			fmt.Fprintf(&b, " %7.2f", r)
		}
		b.WriteByte('\n')
	}

	// §5.3 operational findings: which log templates the warnings were
	// made of, and whether any warning served multiple tickets (Q4).
	sigs := s.Signatures()
	if len(sigs) > 0 {
		fmt.Fprintf(&b, "\ntop warning signatures (operational findings, §5.3):\n")
		for i, sig := range sigs {
			if i >= 8 {
				break
			}
			fmt.Fprintf(&b, "  %3dx (%.0f%% ticket-linked)  %s\n",
				sig.Anomalies, 100*sig.MappedFraction(), sig.Template)
		}
	}
	fmt.Fprintf(&b, "\nwarnings mapped to multiple tickets (paper Q4: \"never happened\"): %d\n",
		s.Result.Outcome.MultiMapped)
	return b.String()
}

// Signatures aggregates the run's warning anomalies by log template — the
// §5.3 operational-findings view.
func (s *System) Signatures() []SignatureStat {
	return pipelineSignatureSummary(s.Dataset, s.Result, s.Config)
}

func methodName(m Method) string {
	if m == "" {
		return string(MethodLSTM)
	}
	return string(m)
}
