package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nfvpredict/internal/bundle"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/lifecycle"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/resilience"
	"nfvpredict/internal/sigtree"
)

// trainServing builds a small sigtree+detector pair on a cyclic corpus,
// enough for scoring to separate seen from unseen messages.
func trainServing(t *testing.T) (*sigtree.Tree, *detect.LSTMDetector) {
	t.Helper()
	tree := sigtree.New()
	texts := []string{
		"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		"interface statistics poll completed for ge-0/0/1 in 12 ms",
		"fpc 0 cpu utilization 20 percent memory 40 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 120 us",
	}
	var stream []features.Event
	base := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 1200; i++ {
		tpl := tree.Learn(texts[i%len(texts)])
		stream = append(stream, features.Event{Time: base.Add(time.Duration(i) * 30 * time.Second), Template: tpl.ID})
	}
	cfg := detect.DefaultLSTMConfig()
	cfg.Hidden = []int{16}
	cfg.MaxVocab = 16
	cfg.Epochs = 6
	cfg.OverSampleRounds = 0
	det := detect.NewLSTMDetector(cfg)
	if err := det.Train([][]features.Event{stream}); err != nil {
		t.Fatal(err)
	}
	return tree, det
}

// testApp wires an app the way run() does, minus listeners and signals.
func testApp(t *testing.T) (*app, *http.ServeMux) {
	t.Helper()
	a := newApp(obs.NewLogger(io.Discard, obs.LevelError), 32, 64, 4)
	tree, det := trainServing(t)
	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = 4
	mcfg.Metrics = a.reg
	mcfg.Traces = a.traces
	mcfg.ClusterOf = func(string) int { return 0 }
	a.mon = ingest.NewMonitor(mcfg, tree, det, nil)
	return a, a.adminMux()
}

func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// TestAdminHealthFlipsOnRejectedReload drives the hot-reload path the way a
// SIGHUP does: a corrupt bundle on disk must flip /healthz and /readyz to
// 503 with the rejection as reason while the serving model stays active,
// and a subsequent good reload must restore 200.
func TestAdminHealthFlipsOnRejectedReload(t *testing.T) {
	a, mux := testApp(t)
	dir := t.TempDir()

	if code, _ := get(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before any reload: %d", code)
	}

	bad := filepath.Join(dir, "bad.bundle")
	if err := os.WriteFile(bad, []byte("NFVBthis is not a valid bundle payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := a.reload(bad); err == nil {
		t.Fatal("corrupt bundle accepted")
	}
	code, body := get(t, mux, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "rejected") {
		t.Fatalf("healthz after rejected reload: %d %q", code, body)
	}
	if code, body = get(t, mux, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, bad) {
		t.Fatalf("readyz after rejected reload: %d %q", code, body)
	}
	// The monitor still serves: messages are still scored.
	a.mon.HandleMessage(logfmt.Message{
		Time: time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC),
		Host: "vpe01", Tag: "rpd",
		Text: "bgp keepalive exchanged with peer 10.0.0.1 hold 90",
	})
	if st := a.mon.Stats(); st.Messages != 1 {
		t.Fatalf("monitor stopped serving after rejected reload: %+v", st)
	}
	// /statusz reports the degraded state.
	var doc struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if _, body = get(t, mux, "/statusz"); json.Unmarshal([]byte(body), &doc) != nil || doc.Ready || doc.Reason == "" {
		t.Fatalf("statusz during degradation: %s", body)
	}

	tree, det := trainServing(t)
	good := filepath.Join(dir, "good.bundle")
	gb := &bundle.Bundle{
		Tree:      tree,
		Detectors: []*detect.LSTMDetector{det},
		Assign:    map[string]int{"vpe01": 0},
		Threshold: 5,
	}
	if err := gb.SaveFile(good); err != nil {
		t.Fatal(err)
	}
	if err := a.reload(good); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, mux, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after good reload: %d", code)
	}
	if got := a.mon.Threshold(); got != 5 {
		t.Fatalf("reload did not apply bundle threshold: %v", got)
	}
	_, metrics := get(t, mux, "/metrics")
	for _, want := range []string{
		"monitor_bundle_reload_failures_total 1",
		"monitor_bundle_reloads_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestAdminTracesExplainInjectedAnomaly feeds normal traffic plus a
// synthetic anomaly through the monitor and checks /traces returns a trace
// that explains the verdict end-to-end: host, score over threshold, and the
// per-window log-probabilities that produced it.
func TestAdminTracesExplainInjectedAnomaly(t *testing.T) {
	a, mux := testApp(t)
	normal := []string{
		"bgp keepalive exchanged with peer 10.0.0.2 hold 90",
		"interface statistics poll completed for ge-0/0/2 in 9 ms",
		"fpc 1 cpu utilization 30 percent memory 45 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 80 us",
	}
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 80; i++ {
		a.mon.HandleMessage(logfmt.Message{Time: at, Host: "vpe07", Tag: "rpd", Text: normal[i%len(normal)]})
		at = at.Add(30 * time.Second)
	}
	a.mon.HandleMessage(logfmt.Message{Time: at, Host: "vpe07", Tag: "rpd",
		Text: "invalid response from peer chassis-control session 42 retries 3"})

	code, body := get(t, mux, "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces: %d %s", code, body)
	}
	var page struct {
		Total  uint64      `json:"total"`
		Traces []obs.Trace `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatalf("decoding /traces: %v\n%s", err, body)
	}
	if page.Total != 1 || len(page.Traces) != 1 {
		t.Fatalf("expected one trace, got total=%d len=%d: %s", page.Total, len(page.Traces), body)
	}
	tr := page.Traces[0]
	if tr.Host != "vpe07" || tr.Model != "lstm" || tr.Cluster != 0 {
		t.Fatalf("trace identity: %+v", tr)
	}
	if tr.Threshold != 4 || tr.Score <= tr.Threshold {
		t.Fatalf("trace does not explain the verdict: score=%v threshold=%v", tr.Score, tr.Threshold)
	}
	if len(tr.Window) == 0 {
		t.Fatalf("trace has no context window: %+v", tr)
	}
	last := tr.Window[len(tr.Window)-1]
	if last.LogProb != -tr.Score || last.Template != tr.Template {
		t.Fatalf("window tail does not carry the verdict log-prob: %+v vs %+v", last, tr)
	}
	// ?n= caps the result and bad values are rejected.
	if _, body = get(t, mux, "/traces?n=1"); !strings.Contains(body, "vpe07") {
		t.Fatalf("/traces?n=1: %s", body)
	}
	if code, _ = get(t, mux, "/traces?n=bogus"); code != http.StatusBadRequest {
		t.Fatalf("/traces?n=bogus: %d", code)
	}
	// The same verdict is visible on /statusz counters.
	var doc struct {
		Monitor ingest.MonitorStats `json:"monitor"`
		Traces  uint64              `json:"traces_total"`
	}
	if _, body = get(t, mux, "/statusz"); json.Unmarshal([]byte(body), &doc) != nil {
		t.Fatalf("decoding /statusz: %s", body)
	}
	if doc.Monitor.Anomalies != 1 || doc.Traces != 1 {
		t.Fatalf("statusz counters: %+v", doc)
	}
}

// testAppAdapt wires an app the way run() does with -adapt on: lifecycle
// manager first (the monitor config needs its Observe hook), monitor
// attached after, /models mounted on the admin mux.
func testAppAdapt(t *testing.T) (*app, *http.ServeMux) {
	t.Helper()
	a := newApp(obs.NewLogger(io.Discard, obs.LevelError), 32, 64, 4)
	tree, det := trainServing(t)
	ms := &lifecycle.ModelSet{
		Detectors: []*detect.LSTMDetector{det},
		Assign:    map[string]int{"vpe01": 0},
		Threshold: 4,
	}
	lcfg := lifecycle.DefaultConfig()
	lcfg.Interval = 0 // cycles via /models/adapt only
	lcfg.GateBudget = 1
	lcfg.WindowLen = 8
	lcfg.MinWindows = 4
	lcfg.Metrics = a.reg
	a.life = lifecycle.New(lcfg, ms)
	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = ms.Threshold
	mcfg.Metrics = a.reg
	mcfg.Traces = a.traces
	mcfg.ClusterOf = ms.ClusterOf()
	mcfg.OnScored = a.life.Observe
	a.mon = ingest.NewMonitorWithResolver(mcfg, tree, ms.Resolver(), nil)
	a.life.Attach(a.mon)
	return a, a.adminMux()
}

// TestReadyzNamedConditions drives the degradation controller through its
// modes and checks the admin surface reports them as *named* conditions:
// shed-learning is informational (readiness stays 200, the degradation is
// listed), shed-scoring fails the "degradation" condition (warnings can no
// longer be emitted, so /readyz must go 503), and recovery walks both back.
func TestReadyzNamedConditions(t *testing.T) {
	a, mux := testAppAdapt(t)
	a.initDegrader()

	if code, body := get(t, mux, "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz at baseline: %d %q", code, body)
	}

	// A burst of durable-I/O faults sheds learning: spooling and timer
	// cycles pause, but scoring — and therefore readiness — is untouched.
	a.degrader.Eval(resilience.Sample{}) // prime the delta baselines
	a.degrader.Eval(resilience.Sample{IOFaults: 5})
	if got := a.degrader.Mode(); got != resilience.ModeShedLearning {
		t.Fatalf("mode after I/O fault burst = %v, want shed-learning", got)
	}
	if !a.life.ShedLearning() {
		t.Fatal("shed-learning mode did not reach the lifecycle manager")
	}
	code, body := get(t, mux, "/readyz")
	if code != http.StatusOK || !strings.Contains(body, "degraded: degradation: learning shed") {
		t.Fatalf("readyz at shed-learning: %d %q", code, body)
	}

	// Scoring faults bursting escalates to shed-scoring: the "degradation"
	// condition fails by name and readiness goes red.
	a.degrader.Eval(resilience.Sample{IOFaults: 5, ScoringFaults: 5})
	if code, body = get(t, mux, "/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "degradation: scoring shed") {
		t.Fatalf("readyz at shed-scoring: %d %q", code, body)
	}
	var rdoc struct {
		Ready      bool            `json:"ready"`
		Conditions []obs.Condition `json:"conditions"`
	}
	if _, body = get(t, mux, "/readyz?format=json"); json.Unmarshal([]byte(body), &rdoc) != nil {
		t.Fatalf("decoding readyz json: %s", body)
	}
	found := false
	for _, c := range rdoc.Conditions {
		if c.Name == "degradation" && !c.OK && strings.Contains(c.Reason, "scoring shed") {
			found = true
		}
	}
	if rdoc.Ready || !found {
		t.Fatalf("readyz json lacks the failing named condition: %s", body)
	}
	// /statusz carries the same state in its resilience section.
	var sdoc struct {
		Resilience struct {
			DegradeMode string          `json:"degrade_mode"`
			Conditions  []obs.Condition `json:"conditions"`
		} `json:"resilience"`
	}
	if _, body = get(t, mux, "/statusz"); json.Unmarshal([]byte(body), &sdoc) != nil ||
		sdoc.Resilience.DegradeMode != "shed-scoring" {
		t.Fatalf("statusz resilience section: %s", body)
	}

	// Recovery is stepwise: clean evaluations walk shed-scoring back to
	// shed-learning and then to normal, and readiness returns with them.
	for i := 0; i < 6; i++ {
		a.degrader.Eval(resilience.Sample{IOFaults: 5, ScoringFaults: 5})
	}
	if got := a.degrader.Mode(); got != resilience.ModeNormal {
		t.Fatalf("mode after clean evals = %v, want normal", got)
	}
	if a.life.ShedLearning() {
		t.Fatal("recovery did not lift shed-learning from the lifecycle manager")
	}
	if code, body = get(t, mux, "/readyz"); code != http.StatusOK || strings.Contains(body, "degraded:") {
		t.Fatalf("readyz after recovery: %d %q", code, body)
	}

	// The adaptation breaker surfaces as an informational condition on the
	// same sampling tick (closed here, so degraded=false but present once a
	// sample ran).
	a.sampleDegrade()
	if _, body = get(t, mux, "/statusz"); !strings.Contains(body, `"adaptation"`) {
		t.Fatalf("statusz lacks the adaptation breaker condition: %s", body)
	}
}

// TestAdminLifecycleWiring drives the -adapt runtime surface end to end:
// scored traffic reaches the spool through the OnScored hook, a forced
// cycle over POST /models/adapt trains, gates, and promotes a candidate
// through the monitor's SwapModel path, /statusz grows a lifecycle
// section, and a bundle hot reload realigns the lifecycle state.
func TestAdminLifecycleWiring(t *testing.T) {
	a, mux := testAppAdapt(t)
	at := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	normal := []string{
		"bgp keepalive exchanged with peer 10.0.0.1 hold 90",
		"interface statistics poll completed for ge-0/0/1 in 12 ms",
		"fpc 0 cpu utilization 20 percent memory 40 percent",
		"ntp clock synchronized to 10.9.9.9 stratum 2 offset 120 us",
	}
	for i := 0; i < 120; i++ {
		a.mon.HandleMessage(logfmt.Message{Time: at, Host: "vpe01", Tag: "rpd", Text: normal[i%len(normal)]})
		at = at.Add(30 * time.Second)
	}
	if st := a.life.Status(); len(st.SpoolWindows) != 1 || st.SpoolWindows[0] == 0 {
		t.Fatalf("OnScored hook did not fill the spool: %+v", st)
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/models/adapt", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /models/adapt: %d %s", rec.Code, rec.Body.String())
	}
	if a.life.Generation() != 1 {
		t.Fatalf("generation after adapt = %d, want 1", a.life.Generation())
	}
	if got := a.mon.Stats().ModelSwaps; got != 1 {
		t.Fatalf("ModelSwaps = %d, want 1", got)
	}

	code, body := get(t, mux, "/models")
	if code != http.StatusOK || !strings.Contains(body, `"generation": 1`) {
		t.Fatalf("GET /models: %d %s", code, body)
	}
	var doc struct {
		Lifecycle *lifecycle.Status `json:"lifecycle"`
	}
	if _, body = get(t, mux, "/statusz"); json.Unmarshal([]byte(body), &doc) != nil || doc.Lifecycle == nil {
		t.Fatalf("statusz has no lifecycle section: %s", body)
	}
	if doc.Lifecycle.Generation != 1 || !doc.Lifecycle.CanRollback {
		t.Fatalf("statusz lifecycle: %+v", doc.Lifecycle)
	}

	// A hot reload realigns the lifecycle: new generation, rollback history
	// dropped (the old models belong to a different template lineage).
	tree, det := trainServing(t)
	good := filepath.Join(t.TempDir(), "good.bundle")
	gb := &bundle.Bundle{
		Tree:      tree,
		Detectors: []*detect.LSTMDetector{det},
		Assign:    map[string]int{"vpe01": 0},
		Threshold: 5,
	}
	if err := gb.SaveFile(good); err != nil {
		t.Fatal(err)
	}
	if err := a.reload(good); err != nil {
		t.Fatal(err)
	}
	st := a.life.Status()
	if st.Generation != 2 || st.CanRollback || st.SpoolWindows[0] != 0 {
		t.Fatalf("lifecycle not realigned after reload: %+v", st)
	}
	if a.life.Serving().Threshold != 5 {
		t.Fatalf("reload did not install the bundle threshold into the lifecycle: %+v", a.life.Serving())
	}
}
