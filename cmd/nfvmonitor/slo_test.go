package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"nfvpredict/internal/obs"
	"nfvpredict/internal/resilience"
)

// TestSLOBurnShedsLearning pins the SLO → degrader chain: an induced
// drop burst flips the shard_drop_ratio fast window (visible at /slo)
// while the degrader is still in normal mode, and the next controller
// sample sheds learning with the SLO burn as its reason — the early
// warning fires before the shed, not after. The -profile-on-burn hook
// captures its CPU profile on the same tick.
func TestSLOBurnShedsLearning(t *testing.T) {
	a, mux := testApp(t)
	a.initDegrader()
	a.profiler = obs.NewBurnProfiler(t.TempDir(), 50*time.Millisecond, time.Hour, a.log)
	a.profiler.Export(a.reg)
	a.sampleDegrade() // prime the controller's delta baselines

	if got := a.degrader.Mode(); got != resilience.ModeNormal {
		t.Fatalf("baseline mode = %v", got)
	}
	// An overload burst: the ingest server would record every shard-queue
	// refusal as a bad admission event. 30% bad over a 1% budget is burn
	// 30 — past the 14.4 fast threshold.
	a.sloDrops.RecordN(70, 30)

	// The burn is already visible on /slo while the degrader still reads
	// normal: the SLO surface leads the shed.
	code, body := get(t, mux, "/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo: %d", code)
	}
	var doc struct {
		SLOs []obs.SLOStatus `json:"slos"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/slo JSON: %v\n%s", err, body)
	}
	var drop *obs.SLOStatus
	for i := range doc.SLOs {
		if doc.SLOs[i].Name == "shard_drop_ratio" {
			drop = &doc.SLOs[i]
		}
	}
	if drop == nil || !drop.Fast.Burning {
		t.Fatalf("/slo does not show the drop burn: %s", body)
	}
	if got := a.degrader.Mode(); got != resilience.ModeNormal {
		t.Fatalf("degrader shed before its sampling tick: %v", got)
	}

	// The controller's next sample consumes the burn: learning shed,
	// reason naming the SLO, burn profile captured.
	a.sampleDegrade()
	if got := a.degrader.Mode(); got != resilience.ModeShedLearning {
		t.Fatalf("mode after burn sample = %v, want shed-learning", got)
	}
	if reason := a.degrader.Reason(); !strings.Contains(reason, "SLO") {
		t.Fatalf("shed reason = %q, want the SLO burn named", reason)
	}
	if got := a.reg.Snapshot().Counters["slo_burn_profiles_total"]; got != 1 {
		t.Fatalf("burn profiles captured = %d, want 1", got)
	}
	// Scoring still runs at shed-learning, so warning availability stays
	// good — both availability ticks so far were sheddable-free.
	if st := a.sloAvail.Status(); st.Fast.Good != 2 || st.Fast.Bad != 0 {
		t.Fatalf("availability SLO = %+v", st.Fast)
	}

	// The burning objective's exported gauge flipped with the Statuses
	// refresh the /slo render performed.
	if v := a.reg.Snapshot().Gauges["shard_drop_ratio_slo_fast_burning"]; v != 1 {
		t.Fatalf("burning gauge = %v", v)
	}
}

// TestStatuszObservabilitySections checks /statusz gained the PR's
// sections: build info from the running binary, the SLO evaluations, and
// the span-ring total.
func TestStatuszObservabilitySections(t *testing.T) {
	a, mux := testApp(t)
	a.spans.Add(obs.Span{TraceID: 1, Kind: obs.KindDecision, Sampled: true, TotalNS: 100})
	_, body := get(t, mux, "/statusz")
	var doc struct {
		Build struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
		Spans uint64          `json:"spans_total"`
		SLOs  []obs.SLOStatus `json:"slos"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if doc.Build.GoVersion == "" {
		t.Fatalf("statusz build section empty: %s", body)
	}
	if doc.Spans != 1 {
		t.Fatalf("spans_total = %d", doc.Spans)
	}
	names := map[string]bool{}
	for _, s := range doc.SLOs {
		names[s.Name] = true
	}
	for _, want := range []string{"accept_verdict_latency", "shard_drop_ratio", "warning_availability"} {
		if !names[want] {
			t.Fatalf("statusz slos missing %q: %v", want, names)
		}
	}
}

// TestWarningLogRateLimited checks the app-level logger wiring: newApp
// arms the per-key token bucket and exports the suppression counter.
func TestWarningLogRateLimited(t *testing.T) {
	a := newApp(obs.NewLogger(io.Discard, obs.LevelWarn), 32, 64, 4)
	for i := 0; i < 20; i++ {
		a.log.WarnLimited("vpe01", "warning signature", "i", i)
	}
	if got := a.reg.Snapshot().Counters["log_suppressed_total"]; got != 15 {
		t.Fatalf("suppressed = %d, want 15 of 20 past the burst of 5", got)
	}
}
