// Command nfvmonitor is the runtime deployment mode of the reproduction:
// it bootstraps the detector on a simulated fleet (standing in for a
// training archive), then listens for live syslog on UDP/TCP and prints a
// warning signature whenever a vPE emits a cluster of anomalous messages
// (§5.1's ≥2-within-a-minute rule).
//
// Usage:
//
//	nfvmonitor -udp 127.0.0.1:5514 -tcp 127.0.0.1:5514 -threshold 6
//
// Point any RFC 3164 syslog sender at it, e.g.:
//
//	logger -n 127.0.0.1 -P 5514 --rfc3164 -t rpd "invalid response from peer chassis-control"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"nfvpredict"
	"nfvpredict/internal/bundle"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/pipeline"
	"nfvpredict/internal/sigtree"
)

func main() {
	udp := flag.String("udp", "127.0.0.1:5514", "UDP listen address (empty disables)")
	tcp := flag.String("tcp", "", "TCP listen address (empty disables)")
	threshold := flag.Float64("threshold", 6, "anomaly threshold (negative log-likelihood; overridden by a bundle's recommendation)")
	year := flag.Int("year", time.Now().Year(), "year for RFC 3164 timestamps")
	seed := flag.Int64("seed", 1, "bootstrap-simulation seed (when no -model)")
	model := flag.String("model", "", "trained bundle from cmd/nfvtrain (empty: bootstrap on simulation)")
	flag.Parse()

	if err := run(*udp, *tcp, *threshold, *year, *seed, *model); err != nil {
		fmt.Fprintln(os.Stderr, "nfvmonitor:", err)
		os.Exit(1)
	}
}

func run(udp, tcp string, threshold float64, year int, seed int64, model string) error {
	var tree *sigtree.Tree
	var resolve func(string) *detect.LSTMDetector
	if model != "" {
		f, err := os.Open(model)
		if err != nil {
			return err
		}
		b, err := bundle.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		tree = b.Tree
		resolve = b.DetectorFor
		if b.Threshold > 0 {
			threshold = b.Threshold
		}
		fmt.Printf("loaded bundle %s: %d detectors, %d templates, threshold %.3f\n",
			model, len(b.Detectors), tree.Len(), threshold)
	} else {
		// Bootstrap: train on a simulated month of normal fleet traffic.
		fmt.Println("bootstrapping detector on simulated training archive...")
		simCfg := nfvpredict.SmallSimConfig()
		simCfg.Seed = seed
		simCfg.Months = 1
		simCfg.UpdateMonth = -1
		trace, err := nfvpredict.Simulate(simCfg)
		if err != nil {
			return err
		}
		ds := pipeline.BuildDataset(trace, simCfg.Start, simCfg.Months)
		var streams [][]features.Event
		for _, v := range ds.VPEs {
			if ev := ds.CleanEvents(v, ds.MonthStart(0), ds.MonthStart(1), 72*time.Hour); len(ev) > 0 {
				streams = append(streams, ev)
			}
		}
		det := detect.NewLSTMDetector(detect.DefaultLSTMConfig())
		if err := det.Train(streams); err != nil {
			return err
		}
		fmt.Printf("detector trained on %d vPE streams, %d templates known\n", len(streams), ds.Tree.Len())
		tree = ds.Tree
		resolve = func(string) *detect.LSTMDetector { return det }
	}

	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = threshold
	mon := ingest.NewMonitorWithResolver(mcfg, tree, resolve, func(w nfvpredict.Warning) {
		fmt.Printf("%s WARNING vpe=%s anomalies=%d first=%s\n",
			time.Now().Format(time.RFC3339), w.VPE, w.Size, w.Time.Format(time.RFC3339))
	})

	scfg := ingest.DefaultServerConfig()
	scfg.UDPAddr, scfg.TCPAddr, scfg.Year = udp, tcp, year
	srv, err := ingest.NewServer(scfg, mon.HandleMessage)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	srv.Start(ctx)
	defer srv.Close()
	if a := srv.UDPAddr(); a != nil {
		fmt.Println("listening UDP", a)
	}
	if a := srv.TCPAddr(); a != nil {
		fmt.Println("listening TCP", a)
	}

	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			msgs, anoms := mon.Counters()
			st := srv.Stats()
			fmt.Printf("\nshutting down: %d messages (%d malformed, %d dropped), %d anomalies, %d warnings\n",
				msgs, st.Malformed, st.Dropped, anoms, len(mon.Warnings()))
			return nil
		case <-ticker.C:
			msgs, anoms := mon.Counters()
			fmt.Printf("status: messages=%d anomalies=%d warnings=%d\n", msgs, anoms, len(mon.Warnings()))
		}
	}
}
