// Command nfvmonitor is the runtime deployment mode of the reproduction:
// it bootstraps the detector on a simulated fleet (standing in for a
// training archive), then listens for live syslog on UDP/TCP and prints a
// warning signature whenever a vPE emits a cluster of anomalous messages
// (§5.1's ≥2-within-a-minute rule).
//
// The monitor is built to run continuously. With -checkpoint it snapshots
// its online state (grown signature tree, per-vPE LSTM streams, warning
// history, counters) atomically on an interval and at shutdown, and resumes
// from the snapshot on the next start — a restart costs no warm-up. With
// -model it serves a trained bundle and hot-reloads it on SIGHUP: a new
// bundle that fails validation is rejected and the serving bundle stays
// active (§4.4's monthly retraining loop, minus the downtime).
//
// With -admin the monitor serves an HTTP observability surface: /metrics
// (Prometheus text; ?format=json for JSON), /statusz (JSON status snapshot
// including the serving bundle and last checkpoint), /traces (recent
// decision traces explaining each anomaly verdict), /healthz + /readyz
// (503 while degraded, e.g. after a rejected hot reload), and the pprof
// suite under /debug/pprof/.
//
// Usage:
//
//	nfvmonitor -udp 127.0.0.1:5514 -tcp 127.0.0.1:5514 -threshold 6 \
//	           -model model.bundle -checkpoint monitor.ckpt -admin :9090
//
// Point any RFC 3164 syslog sender at it, e.g.:
//
//	logger -n 127.0.0.1 -P 5514 --rfc3164 -t rpd "invalid response from peer chassis-control"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"nfvpredict"
	"nfvpredict/internal/bundle"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/faultinject"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/lifecycle"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/pipeline"
	"nfvpredict/internal/resilience"
	"nfvpredict/internal/sigtree"
)

// options collects the flag values.
type options struct {
	udp, tcp  string
	threshold float64
	year      int
	seed      int64
	shards    int
	precision string
	model      string
	ckpt       string
	ckptEvery  time.Duration
	admin      string
	traceBuf   int
	spanBuf    int
	spanSample int
	sloLatency time.Duration
	burnDir    string
	verbose    bool
	watchdog   time.Duration
	chaos      bool

	adapt         bool
	adaptInterval time.Duration
	adaptGate     float64
	adaptSpool    string
}

func main() {
	var o options
	flag.StringVar(&o.udp, "udp", "127.0.0.1:5514", "UDP listen address (empty disables)")
	flag.StringVar(&o.tcp, "tcp", "", "TCP listen address (empty disables)")
	flag.Float64Var(&o.threshold, "threshold", 6, "anomaly threshold (negative log-likelihood; overridden by a bundle's recommendation)")
	flag.IntVar(&o.year, "year", time.Now().Year(), "year for RFC 3164 timestamps")
	flag.Int64Var(&o.seed, "seed", 1, "bootstrap-simulation seed (when no -model)")
	flag.IntVar(&o.shards, "shards", 0, "scoring shards: hosts are hashed onto shards, each owning its vPEs' LSTM streams and scored by its own worker (0 = GOMAXPROCS)")
	flag.StringVar(&o.precision, "precision", "f64", "serving inference precision: f64 (reference), f32 (packed float32 kernels), or int8 (row-quantized GEMMs); training and checkpoints stay float64")
	flag.StringVar(&o.model, "model", "", "trained bundle from cmd/nfvtrain (empty: bootstrap on simulation); SIGHUP hot-reloads it")
	flag.StringVar(&o.ckpt, "checkpoint", "", "checkpoint file: online state is saved here periodically and restored at startup (empty disables)")
	flag.DurationVar(&o.ckptEvery, "checkpoint-interval", time.Minute, "how often to write the checkpoint")
	flag.StringVar(&o.admin, "admin", "", "admin HTTP listen address serving /metrics, /statusz, /traces, /healthz, /readyz, /debug/pprof (empty disables)")
	flag.IntVar(&o.traceBuf, "trace-buffer", 256, "decision traces retained for /traces")
	flag.IntVar(&o.spanBuf, "span-buffer", 512, "pipeline spans retained for /spans")
	flag.IntVar(&o.spanSample, "span-sample", 16, "stage-clock sampling: 1 in N accepted messages carries a full span stage breakdown (warnings always get a span); 0 disables sampling — and with it the accept_verdict_latency SLO, which only observes sampled verdicts (/slo marks it inactive)")
	flag.DurationVar(&o.sloLatency, "slo-latency", 250*time.Millisecond, "accept→verdict latency bound for the accept_verdict_latency SLO")
	flag.StringVar(&o.burnDir, "profile-on-burn", "", "directory for CPU profiles captured when an SLO fast window starts burning (empty disables)")
	flag.BoolVar(&o.verbose, "v", false, "verbose (debug-level) logging")
	flag.DurationVar(&o.watchdog, "watchdog", 30*time.Second, "stuck-shard-worker deadline: a worker with queued work and no heartbeat progress for this long is abandoned and replaced (0 disables)")
	flag.BoolVar(&o.chaos, "chaos", false, "enable runtime fault injection: registers the process-wide fault points and mounts the /chaos admin endpoint (drills only — never in production)")
	flag.BoolVar(&o.adapt, "adapt", false, "enable the online model lifecycle: drift detection, background fine-tuning, shadow-gated promotion (adds /models to the admin surface)")
	flag.DurationVar(&o.adaptInterval, "adapt-interval", 10*time.Minute, "lifecycle cycle period (drift check + possible adaptation)")
	flag.Float64Var(&o.adaptGate, "adapt-gate", 0.02, "promotion gate: max false-alarm rate a candidate may show on held-out spooled traffic")
	flag.StringVar(&o.adaptSpool, "adapt-spool", "", "spool file: recent normal windows are persisted here with the checkpoint and restored at startup (empty disables)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "nfvmonitor:", err)
		os.Exit(1)
	}
}

// app is the assembled runtime: every long-lived component of the monitor
// process plus the mutable status the admin surface reports. It exists (as
// opposed to locals in run) so the admin endpoints and the hot-reload path
// can be driven by tests without a process or signals.
type app struct {
	log     *obs.Logger
	reg     *obs.Registry
	traces  *obs.TraceRing
	health  *obs.Health
	mon     *ingest.Monitor
	srv     *ingest.Server
	life    *lifecycle.Manager
	spool   string
	started time.Time

	// spans/tracer are the pipeline-tracing layer behind /spans; slos is
	// the objective set behind /slo, with the three standing objectives
	// held out as direct handles. profiler captures a CPU profile when a
	// fast window starts burning (-profile-on-burn).
	spans      *obs.SpanRing
	tracer     *obs.Tracer
	slos       *obs.SLOSet
	sloLatency *obs.SLO
	sloDrops   *obs.SLO
	sloAvail   *obs.SLO
	profiler   *obs.BurnProfiler

	// degrader is the degradation controller: it samples queue pressure and
	// fault counters (sampleDegrade, on a timer in run) and steps the stack
	// between normal / shed-learning / shed-scoring. chaos mirrors -chaos.
	degrader *resilience.Degrader
	chaos    bool

	reloads        *obs.Counter
	reloadFailures *obs.Counter
	ckptFailures   *obs.Counter
	lastCkptUnix   *obs.Gauge
	packedBytesG   *obs.Gauge

	// precision is the serving inference mode every generation of
	// detectors is packed to (-precision flag); immutable after run starts.
	precision detect.Precision

	mu     sync.Mutex
	bundle bundleStatus
	ckpt   ckptStatus
	// dets is the currently serving detector set, for packed-memory
	// accounting; with the lifecycle enabled its Serving() set wins (it
	// changes on promotions the app never sees).
	dets []*detect.LSTMDetector
}

// bundleStatus describes the serving model for /statusz.
type bundleStatus struct {
	Path          string    `json:"path,omitempty"`
	FormatVersion uint32    `json:"format_version,omitempty"`
	LoadedAt      time.Time `json:"loaded_at,omitempty"`
	Detectors     int       `json:"detectors"`
	Templates     int       `json:"templates"`
	Threshold     float64   `json:"threshold"`
	Bootstrap     bool      `json:"bootstrap,omitempty"`
}

// ckptStatus describes checkpoint activity for /statusz.
type ckptStatus struct {
	Path        string    `json:"path,omitempty"`
	LastSavedAt time.Time `json:"last_saved_at,omitempty"`
	LastError   string    `json:"last_error,omitempty"`
	RestoredAt  time.Time `json:"restored_at,omitempty"`
}

// resilienceStatus is the /statusz section describing the runtime
// resilience layer: the active degradation mode and why, supervision
// counters, the full named health-condition set, and whether chaos fault
// injection is armed into this process.
type resilienceStatus struct {
	DegradeMode    string          `json:"degrade_mode"`
	DegradeReason  string          `json:"degrade_reason,omitempty"`
	WorkerRestarts uint64          `json:"worker_restarts"`
	WatchdogKicks  uint64          `json:"watchdog_kicks"`
	ShardPanics    uint64          `json:"shard_panics"`
	Conditions     []obs.Condition `json:"conditions"`
	ChaosEnabled   bool            `json:"chaos_enabled,omitempty"`
}

// statusDoc is the /statusz document.
type statusDoc struct {
	Now       time.Time `json:"now"`
	UptimeSec float64   `json:"uptime_sec"`
	// Build identifies the running binary (module version, VCS revision,
	// go version) so a fleet operator can tell instances apart.
	Build      obs.BuildInfo       `json:"build"`
	Ready      bool                `json:"ready"`
	Reason     string              `json:"reason,omitempty"`
	Bundle     bundleStatus        `json:"bundle"`
	Checkpoint ckptStatus          `json:"checkpoint"`
	Monitor    ingest.MonitorStats `json:"monitor"`
	Ingest     ingest.Stats        `json:"ingest"`
	Traces     uint64              `json:"traces_total"`
	Spans      uint64              `json:"spans_total"`
	SLOs       []obs.SLOStatus     `json:"slos,omitempty"`
	Lifecycle  *lifecycle.Status   `json:"lifecycle,omitempty"`
	Resilience resilienceStatus    `json:"resilience"`
	// Precision is the active serving inference mode (f64/f32/int8);
	// ModelPackedBytes is the total packed-weight footprint of the
	// quantized serving engines (0 at f64).
	Precision        string `json:"precision"`
	ModelPackedBytes int    `json:"model_packed_bytes"`
}

// newApp builds the observability plumbing shared by every code path.
// spanSample is the 1-in-N stage-clock sampling rate (0 samples nothing;
// warnings still get spans).
func newApp(log *obs.Logger, traceBuf, spanBuf, spanSample int) *app {
	reg := obs.NewRegistry()
	a := &app{
		log:     log,
		reg:     reg,
		traces:  obs.NewTraceRing(traceBuf),
		spans:   obs.NewSpanRing(spanBuf),
		slos:    obs.NewSLOSet(),
		health:  obs.NewHealth(),
		started: time.Now(),
		reloads: reg.Counter("monitor_bundle_reloads_total",
			"Successful SIGHUP bundle hot reloads."),
		reloadFailures: reg.Counter("monitor_bundle_reload_failures_total",
			"Rejected bundle hot reloads (load or validation failure)."),
		ckptFailures: reg.Counter("monitor_checkpoint_failures_total",
			"Checkpoint writes that failed."),
		lastCkptUnix: reg.Gauge("monitor_checkpoint_last_unix",
			"Unix time of the last successful checkpoint write (0 = never)."),
	}
	n := 1
	if spanSample <= 0 {
		n = 0
	}
	a.tracer = obs.NewTracer(a.spans, n, spanSample)
	a.tracer.Export(reg)
	a.slos.Export(reg)
	a.sloLatency = a.slos.Add(obs.SLOConfig{
		Name:        "accept_verdict_latency",
		Description: "Scored messages reaching a verdict within the latency bound.",
		Target:      0.99,
	})
	a.sloDrops = a.slos.Add(obs.SLOConfig{
		Name:        "shard_drop_ratio",
		Description: "Accepted messages admitted to a shard queue (not dropped on overflow).",
		Target:      0.99,
	})
	a.sloAvail = a.slos.Add(obs.SLOConfig{
		Name:        "warning_availability",
		Description: "Degradation-controller ticks during which warnings could still be emitted (scoring not shed).",
		Target:      0.99,
	})
	// Hot-path warning lines (one per warning signature, keyed by vPE) are
	// token-bucket limited so a flapping host cannot flood the log.
	log.SetRateLimit(1, 5, reg.Counter("log_suppressed_total",
		"Hot-path warning log lines suppressed by the per-key rate limiter."))
	return a
}

// packedBytes sums the packed-weight footprint of the serving detectors,
// preferring the lifecycle's live serving set (promotions replace
// detectors behind the app's back).
func (a *app) packedBytes() int {
	var dets []*detect.LSTMDetector
	if a.life != nil {
		if ms := a.life.Serving(); ms != nil {
			dets = ms.Detectors
		}
	} else {
		a.mu.Lock()
		dets = a.dets
		a.mu.Unlock()
	}
	total := 0
	for _, d := range dets {
		if d != nil {
			total += d.PackedBytes()
		}
	}
	if a.packedBytesG != nil {
		a.packedBytesG.SetInt(total)
	}
	return total
}

// status builds the /statusz document.
func (a *app) status() any {
	a.mu.Lock()
	b, c := a.bundle, a.ckpt
	a.mu.Unlock()
	ready, reason := a.health.Ready()
	doc := statusDoc{
		Now:        time.Now(),
		UptimeSec:  time.Since(a.started).Seconds(),
		Build:      obs.GetBuildInfo(),
		Ready:      ready,
		Reason:     reason,
		Bundle:     b,
		Checkpoint: c,
		Traces:     a.traces.Total(),
		Spans:      a.spans.Total(),
		SLOs:       a.slos.Statuses(),
	}
	if a.mon != nil {
		doc.Monitor = a.mon.Stats()
		doc.Bundle.Threshold = a.mon.Threshold()
	}
	if a.srv != nil {
		doc.Ingest = a.srv.Stats()
	}
	if a.life != nil {
		st := a.life.Status()
		doc.Lifecycle = &st
	}
	doc.Resilience = resilienceStatus{
		DegradeMode:    doc.Monitor.DegradeMode,
		WorkerRestarts: doc.Monitor.WorkerRestarts,
		WatchdogKicks:  doc.Monitor.WatchdogKicks,
		ShardPanics:    doc.Monitor.ShardPanics,
		Conditions:     a.health.Conditions(),
		ChaosEnabled:   a.chaos,
	}
	if a.degrader != nil {
		rm := a.degrader.Mode()
		doc.Resilience.DegradeMode = rm.String()
		if rm != resilience.ModeNormal {
			doc.Resilience.DegradeReason = a.degrader.Reason()
		}
	}
	doc.Precision = a.precision.String()
	doc.ModelPackedBytes = a.packedBytes()
	return doc
}

// adminMux assembles the admin surface. With the lifecycle enabled it also
// mounts the model-management endpoints: GET /models, POST /models/adapt,
// POST /models/promote, POST /models/rollback. With -chaos it mounts the
// fault-point registry: GET /chaos/ (point listing), POST /chaos/arm,
// POST /chaos/disarm.
func (a *app) adminMux() *http.ServeMux {
	mux := obs.NewAdminMux(obs.AdminConfig{
		Registry: a.reg,
		Traces:   a.traces,
		Spans:    a.spans,
		SLO:      a.slos,
		Health:   a.health,
		Status:   a.status,
	})
	if a.life != nil {
		h := a.life.Handler()
		mux.Handle("/models", h)
		mux.Handle("/models/", h)
	}
	if a.chaos {
		mux.Handle("/chaos/", http.StripPrefix("/chaos", faultinject.Default.Handler()))
	}
	return mux
}

// initDegrader builds the degradation controller. Mode transitions fan out
// to every consumer: the monitor (shed-scoring short-circuits the scoring
// hot path), the lifecycle (shed-learning stops spooling and timer cycles),
// and the health conditions (/readyz goes 503 only at shed-scoring — the
// point where warnings can no longer be emitted; shed-learning is an
// informational degradation, the monitor still warns).
func (a *app) initDegrader() {
	a.degrader = resilience.NewDegrader(resilience.DegraderConfig{}, func(from, to resilience.Mode, reason string) {
		a.mon.SetDegrade(to)
		if a.life != nil {
			a.life.SetShedLearning(to >= resilience.ModeShedLearning, reason)
		}
		// One write per transition — the same named condition flips between
		// critical (shed-scoring: warnings stop, readiness must go red) and
		// informational (shed-learning: still warning, operators should see
		// it but load balancers should not route around it).
		switch to {
		case resilience.ModeShedScoring:
			a.health.SetCondition("degradation", false, "scoring shed: "+reason)
		case resilience.ModeShedLearning:
			a.health.SetDegraded("degradation", true, "learning shed: "+reason)
		default:
			a.health.SetDegraded("degradation", false, "")
		}
		a.log.Warn("degradation mode change", "from", from.String(), "to", to.String(), "reason", reason)
	})
}

// sampleDegrade feeds the degradation controller one observation (queue
// pressure plus cumulative fault counters; the controller works in deltas)
// and refreshes the adaptation-breaker health condition. Called on a timer
// from run and directly by tests.
func (a *app) sampleDegrade() {
	if a.degrader == nil || a.mon == nil {
		return
	}
	st := a.mon.Stats()
	// Warning availability is sampled here, on the controller cadence: a tick
	// spent in shed-scoring is a tick the monitor could not have warned.
	a.sloAvail.Record(a.mon.DegradeMode() != resilience.ModeShedScoring)
	burning := a.slos.FastBurning()
	if len(burning) > 0 {
		a.profiler.MaybeCapture(strings.Join(burning, ","))
	}
	a.degrader.Eval(resilience.Sample{
		QueueFrac:     a.mon.QueueFrac(),
		ScoringFaults: st.ShardPanics,
		IOFaults:      a.ckptFailures.Value(),
		SLOFastBurn:   len(burning) > 0,
	})
	if a.life != nil {
		bst := a.life.BreakerStatus()
		a.health.SetDegraded("adaptation", bst.StateName != "closed",
			"adaptation breaker "+bst.StateName)
	}
}

// setBundle records the serving model in /statusz.
func (a *app) setBundle(b bundleStatus) {
	a.mu.Lock()
	a.bundle = b
	a.mu.Unlock()
}

// reload re-reads the bundle file and swaps it in. Transient load failures
// are retried; a bundle that still fails to load or validate is rejected:
// the serving model stays active, the failure is counted, and the "bundle"
// readiness condition flips off (with the error as reason) until a reload
// succeeds — exactly the state an operator should see on /readyz while a
// bad bundle sits on disk.
func (a *app) reload(model string) error {
	var b *bundle.Bundle
	err := resilience.Retry(nil, resilience.RetryPolicy{Attempts: 3, Base: 50 * time.Millisecond}, func() error {
		var lerr error
		b, lerr = bundle.LoadFile(model)
		return lerr
	})
	if err != nil {
		a.reloadFailures.Inc()
		a.health.SetCondition("bundle", false, fmt.Sprintf("hot-reload of %s rejected: %v", model, err))
		a.log.Error("hot-reload rejected, keeping serving bundle", "model", model, "err", err)
		return err
	}
	// Pack the incoming detectors to the serving precision before any
	// message can score against them; the outgoing generation's engines go
	// with it. Bundles never carry a packed engine — precision is runtime
	// state, re-derived from the float64 weights on every load.
	for _, d := range b.Detectors {
		d.SetPrecision(a.precision)
	}
	a.mon.SwapModel(b.Tree, b.DetectorFor, b.Threshold)
	a.mon.SetClusterOf(func(host string) int {
		if ci, ok := b.Assign[host]; ok {
			return ci
		}
		return 0
	})
	a.mu.Lock()
	a.dets = append([]*detect.LSTMDetector(nil), b.Detectors...)
	a.mu.Unlock()
	a.packedBytes()
	if a.life != nil {
		// The monitor is already swapped; realign the lifecycle (new
		// template lineage: spools rebuilt, drift references reset,
		// pending/previous generations dropped).
		a.life.SetServing(lifecycle.ModelSetFromBundle(b))
	}
	a.reloads.Inc()
	a.health.SetCondition("bundle", true, "")
	a.setBundle(bundleStatus{
		Path:          model,
		FormatVersion: bundle.Version,
		LoadedAt:      time.Now(),
		Detectors:     len(b.Detectors),
		Templates:     b.Tree.Len(),
		Threshold:     b.Threshold,
	})
	a.log.Info("hot-reloaded bundle", "model", model,
		"detectors", len(b.Detectors), "templates", b.Tree.Len(), "threshold", b.Threshold)
	return nil
}

// ioRetry is the retry policy for durable writes (checkpoint and spool):
// transient conditions — disk briefly full, an injected fault — are
// absorbed here, and the atomic-write discipline underneath guarantees the
// previous artifact survives every failed attempt.
var ioRetry = resilience.RetryPolicy{Attempts: 3, Base: 50 * time.Millisecond, Max: 2 * time.Second}

// saveCheckpoint writes the checkpoint file with retries, recording the
// outcome for /statusz and /metrics.
func (a *app) saveCheckpoint(path, reason string) {
	if path == "" {
		return
	}
	err := resilience.Retry(nil, ioRetry, func() error {
		return a.mon.CheckpointFile(path)
	})
	now := time.Now()
	a.mu.Lock()
	a.ckpt.Path = path
	if err != nil {
		a.ckpt.LastError = err.Error()
	} else {
		a.ckpt.LastSavedAt = now
		a.ckpt.LastError = ""
	}
	a.mu.Unlock()
	if err != nil {
		a.ckptFailures.Inc()
		a.log.Error("checkpoint failed", "path", path, "reason", reason, "err", err)
		return
	}
	a.lastCkptUnix.SetTime(now)
	a.log.Debug("checkpoint written", "path", path, "reason", reason)
	// The spool rides along with the checkpoint so the two artifacts agree
	// on tree lineage; a spool failure never blocks the checkpoint.
	if a.life != nil && a.spool != "" {
		serr := resilience.Retry(nil, ioRetry, func() error {
			return a.life.SaveSpool(a.spool)
		})
		if serr != nil {
			a.log.Error("spool save failed", "path", a.spool, "err", serr)
		} else {
			a.log.Debug("spool written", "path", a.spool, "reason", reason)
		}
	}
}

// loadServing builds the serving model (tree + resolver + cluster mapping +
// threshold) from a bundle file or, without one, by bootstrap-training on a
// simulated month. The returned ModelSet is the same model in the shape the
// lifecycle manages (nil Assign falls back to cluster 0, like a bundle).
func loadServing(a *app, model string, threshold float64, seed int64) (*sigtree.Tree, func(string) *detect.LSTMDetector, func(string) int, float64, *lifecycle.ModelSet, error) {
	if model != "" {
		b, err := bundle.LoadFile(model)
		if err != nil {
			return nil, nil, nil, 0, nil, err
		}
		if b.Threshold > 0 {
			threshold = b.Threshold
		}
		a.log.Info("loaded bundle", "model", model, "detectors", len(b.Detectors),
			"templates", b.Tree.Len(), "threshold", threshold)
		a.setBundle(bundleStatus{
			Path:          model,
			FormatVersion: bundle.Version,
			LoadedAt:      time.Now(),
			Detectors:     len(b.Detectors),
			Templates:     b.Tree.Len(),
			Threshold:     threshold,
		})
		clusterOf := func(host string) int {
			if ci, ok := b.Assign[host]; ok {
				return ci
			}
			return 0
		}
		ms := lifecycle.ModelSetFromBundle(b)
		ms.Threshold = threshold
		return b.Tree, b.DetectorFor, clusterOf, threshold, ms, nil
	}
	// Bootstrap: train on a simulated month of normal fleet traffic.
	a.log.Info("bootstrapping detector on simulated training archive")
	simCfg := nfvpredict.SmallSimConfig()
	simCfg.Seed = seed
	simCfg.Months = 1
	simCfg.UpdateMonth = -1
	trace, err := nfvpredict.Simulate(simCfg)
	if err != nil {
		return nil, nil, nil, 0, nil, err
	}
	ds := pipeline.BuildDataset(trace, simCfg.Start, simCfg.Months)
	var streams [][]features.Event
	for _, v := range ds.VPEs {
		if ev := ds.CleanEvents(v, ds.MonthStart(0), ds.MonthStart(1), 72*time.Hour); len(ev) > 0 {
			streams = append(streams, ev)
		}
	}
	det := detect.NewLSTMDetector(detect.DefaultLSTMConfig())
	det.SetMetrics(a.reg, "")
	if err := det.Train(streams); err != nil {
		return nil, nil, nil, 0, nil, err
	}
	a.log.Info("detector trained", "streams", len(streams), "templates", ds.Tree.Len())
	a.setBundle(bundleStatus{
		Bootstrap: true,
		LoadedAt:  time.Now(),
		Detectors: 1,
		Templates: ds.Tree.Len(),
		Threshold: threshold,
	})
	ms := &lifecycle.ModelSet{
		Detectors: []*detect.LSTMDetector{det},
		Threshold: threshold,
	}
	return ds.Tree, func(string) *detect.LSTMDetector { return det }, nil, threshold, ms, nil
}

func run(o options) error {
	level := obs.LevelInfo
	if o.verbose {
		level = obs.LevelDebug
	}
	a := newApp(obs.NewLogger(os.Stdout, level), o.traceBuf, o.spanBuf, o.spanSample)
	if o.burnDir != "" {
		a.profiler = obs.NewBurnProfiler(o.burnDir, 0, 0, a.log)
		a.profiler.Export(a.reg)
	}

	prec, err := detect.ParsePrecision(o.precision)
	if err != nil {
		return err
	}
	a.precision = prec
	a.reg.Gauge(obs.LabelName("serving_precision_info", "mode", prec.String()),
		"Active serving inference precision (the labelled mode is 1).").SetInt(1)
	a.packedBytesG = a.reg.Gauge("model_packed_bytes",
		"Packed-weight footprint of the quantized serving engines (0 at f64).")

	tree, resolve, clusterOf, threshold, ms, err := loadServing(a, o.model, o.threshold, o.seed)
	if err != nil {
		return err
	}
	// Pack the bootstrap/bundle detectors once at startup; every later
	// generation (hot reload, lifecycle promotion/rollback) re-packs on its
	// own path. The resolver serves the same detector objects, so packing
	// the ModelSet covers both.
	for _, d := range ms.Detectors {
		if d != nil {
			d.SetPrecision(prec)
		}
	}
	a.dets = append([]*detect.LSTMDetector(nil), ms.Detectors...)
	a.packedBytes()

	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = threshold
	mcfg.Metrics = a.reg
	mcfg.Traces = a.traces
	mcfg.Tracer = a.tracer
	mcfg.LatencySLO = a.sloLatency
	mcfg.LatencyBound = o.sloLatency
	mcfg.ClusterOf = clusterOf
	mcfg.Precision = prec
	mcfg.Shards = o.shards
	if mcfg.Shards <= 0 {
		mcfg.Shards = runtime.GOMAXPROCS(0)
	}
	mcfg.Watchdog = o.watchdog
	a.chaos = o.chaos
	if o.chaos {
		// Fault drills: score/worker/heartbeat fault points become live and
		// operator-togglable through POST /chaos/arm.
		mcfg.Faults = faultinject.Default
	}
	// The lifecycle manager is built before the monitor because the monitor
	// config needs its Observe hook; the monitor is attached just after.
	if o.adapt {
		lcfg := lifecycle.DefaultConfig()
		lcfg.Interval = o.adaptInterval
		lcfg.GateBudget = o.adaptGate
		lcfg.Metrics = a.reg
		lcfg.Tracer = a.tracer
		lcfg.Log = log.New(os.Stdout, "", log.LstdFlags)
		if o.chaos {
			lcfg.Faults = faultinject.Default
		}
		a.life = lifecycle.New(lcfg, ms)
		a.spool = o.adaptSpool
		mcfg.OnScored = a.life.Observe
	}
	onWarning := func(w nfvpredict.Warning) {
		// Rate-limited per vPE: a host stuck in an anomalous state re-emits
		// its signature every cluster, and the log should not amplify that.
		a.log.WarnLimited(w.VPE, "warning signature", "vpe", w.VPE, "anomalies", w.Size, "first", w.Time)
	}

	// Resume from the last checkpoint when one exists; any failure —
	// missing file, corruption, model mismatch after a retrain — degrades
	// to a cold start, never a refusal to serve.
	if o.ckpt != "" {
		if _, serr := os.Stat(o.ckpt); serr == nil {
			restored, rerr := ingest.RestoreMonitorFile(o.ckpt, mcfg, resolve, onWarning)
			if rerr != nil {
				// Move the corrupt file aside so the next interval save does
				// not overwrite the evidence, then start cold.
				if qpath, qerr := resilience.Quarantine(o.ckpt); qerr != nil {
					a.log.Warn("checkpoint unusable, starting cold", "path", o.ckpt, "err", rerr, "quarantine_err", qerr)
				} else {
					a.log.Warn("checkpoint unusable, starting cold", "path", o.ckpt, "err", rerr, "quarantined", qpath)
				}
			} else {
				a.mon = restored
				st := a.mon.Stats()
				a.mu.Lock()
				a.ckpt.RestoredAt = time.Now()
				a.mu.Unlock()
				a.log.Info("restored checkpoint", "path", o.ckpt,
					"hosts", st.ActiveHosts, "messages", st.Messages, "warnings", st.Warnings)
			}
		}
	}
	if a.mon == nil {
		a.mon = ingest.NewMonitorWithResolver(mcfg, tree, resolve, onWarning)
	}
	a.initDegrader()
	if a.life != nil {
		a.life.Attach(a.mon)
		if lerr := a.life.LoadSpool(o.adaptSpool); lerr != nil {
			a.log.Warn("spool unusable, starting cold", "path", o.adaptSpool, "err", lerr)
		}
		a.life.Start()
		defer a.life.Stop()
		a.log.Info("lifecycle up", "interval", o.adaptInterval, "gate", o.adaptGate)
	}

	scfg := ingest.DefaultServerConfig()
	scfg.UDPAddr, scfg.TCPAddr, scfg.Year = o.udp, o.tcp, o.year
	scfg.Metrics = a.reg
	// The listeners route each parsed message straight to its host's shard
	// queue; shard workers do the scoring (batching distinct hosts).
	scfg.Sharded = a.mon
	// Trace IDs are minted at frame accept so spans cover decode and queue
	// wait; every queue admission/refusal feeds the shard_drop_ratio SLO.
	scfg.Tracer = a.tracer
	scfg.DropSLO = a.sloDrops
	srv, err := ingest.NewServer(scfg, nil)
	if err != nil {
		return err
	}
	a.srv = srv
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	a.mon.Start()
	defer a.mon.Stop()
	srv.Start(ctx)
	defer srv.Close()
	a.log.Info("scoring shards up", "shards", a.mon.ShardCount())
	if addr := srv.UDPAddr(); addr != nil {
		a.log.Info("listening", "proto", "udp", "addr", addr)
	}
	if addr := srv.TCPAddr(); addr != nil {
		a.log.Info("listening", "proto", "tcp", "addr", addr)
	}

	// Admin surface: its own listener and mux, shut down with the monitor.
	if o.admin != "" {
		ln, lerr := net.Listen("tcp", o.admin)
		if lerr != nil {
			return fmt.Errorf("admin listener: %w", lerr)
		}
		admin := &http.Server{Handler: a.adminMux()}
		go func() {
			if serr := admin.Serve(ln); serr != nil && serr != http.ErrServerClosed {
				a.log.Error("admin server failed", "err", serr)
			}
		}()
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			admin.Shutdown(sctx)
		}()
		a.log.Info("admin surface up", "addr", ln.Addr(),
			"endpoints", "/metrics /statusz /traces /spans /slo /healthz /readyz /debug/pprof")
	}

	// SIGHUP: hot-reload the bundle. A bundle that fails to load or
	// validate is rejected and the serving model stays active.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	status := time.NewTicker(10 * time.Second)
	defer status.Stop()
	degradeTick := time.NewTicker(5 * time.Second)
	defer degradeTick.Stop()
	ckptTick := make(<-chan time.Time) // nil channel: disabled
	if o.ckpt != "" && o.ckptEvery > 0 {
		t := time.NewTicker(o.ckptEvery)
		defer t.Stop()
		ckptTick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			// Stop the listeners, drain the shard queues, then checkpoint
			// the fully-drained state.
			srv.Close()
			a.mon.Stop()
			a.saveCheckpoint(o.ckpt, "shutdown")
			mst := a.mon.Stats()
			st := srv.Stats()
			a.log.Info("shutting down",
				"messages", mst.Messages, "malformed", st.Malformed,
				"dropped", st.Dropped, "sink_panics", st.SinkPanics,
				"anomalies", mst.Anomalies, "warnings", mst.Warnings,
				"evicted_hosts", mst.EvictedHosts)
			return nil
		case <-hup:
			if o.model == "" {
				a.log.Warn("SIGHUP ignored: no -model bundle to reload")
				continue
			}
			if a.reload(o.model) == nil {
				a.saveCheckpoint(o.ckpt, "post-reload")
			}
		case <-ckptTick:
			a.saveCheckpoint(o.ckpt, "interval")
		case <-degradeTick.C:
			a.sampleDegrade()
		case <-status.C:
			a.packedBytes() // refresh the gauge after lifecycle promotions
			mst := a.mon.Stats()
			sst := srv.Stats()
			a.log.Info("status",
				"messages", mst.Messages, "anomalies", mst.Anomalies,
				"warnings", mst.Warnings, "hosts", mst.ActiveHosts,
				"malformed", sst.Malformed, "dropped", sst.Dropped)
		}
	}
}
