// Command nfvmonitor is the runtime deployment mode of the reproduction:
// it bootstraps the detector on a simulated fleet (standing in for a
// training archive), then listens for live syslog on UDP/TCP and prints a
// warning signature whenever a vPE emits a cluster of anomalous messages
// (§5.1's ≥2-within-a-minute rule).
//
// The monitor is built to run continuously. With -checkpoint it snapshots
// its online state (grown signature tree, per-vPE LSTM streams, warning
// history, counters) atomically on an interval and at shutdown, and resumes
// from the snapshot on the next start — a restart costs no warm-up. With
// -model it serves a trained bundle and hot-reloads it on SIGHUP: a new
// bundle that fails validation is rejected and the serving bundle stays
// active (§4.4's monthly retraining loop, minus the downtime).
//
// Usage:
//
//	nfvmonitor -udp 127.0.0.1:5514 -tcp 127.0.0.1:5514 -threshold 6 \
//	           -model model.bundle -checkpoint monitor.ckpt
//
// Point any RFC 3164 syslog sender at it, e.g.:
//
//	logger -n 127.0.0.1 -P 5514 --rfc3164 -t rpd "invalid response from peer chassis-control"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nfvpredict"
	"nfvpredict/internal/bundle"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/ingest"
	"nfvpredict/internal/pipeline"
	"nfvpredict/internal/sigtree"
)

func main() {
	udp := flag.String("udp", "127.0.0.1:5514", "UDP listen address (empty disables)")
	tcp := flag.String("tcp", "", "TCP listen address (empty disables)")
	threshold := flag.Float64("threshold", 6, "anomaly threshold (negative log-likelihood; overridden by a bundle's recommendation)")
	year := flag.Int("year", time.Now().Year(), "year for RFC 3164 timestamps")
	seed := flag.Int64("seed", 1, "bootstrap-simulation seed (when no -model)")
	model := flag.String("model", "", "trained bundle from cmd/nfvtrain (empty: bootstrap on simulation); SIGHUP hot-reloads it")
	ckpt := flag.String("checkpoint", "", "checkpoint file: online state is saved here periodically and restored at startup (empty disables)")
	ckptEvery := flag.Duration("checkpoint-interval", time.Minute, "how often to write the checkpoint")
	flag.Parse()

	if err := run(*udp, *tcp, *threshold, *year, *seed, *model, *ckpt, *ckptEvery); err != nil {
		fmt.Fprintln(os.Stderr, "nfvmonitor:", err)
		os.Exit(1)
	}
}

// loadServing builds the serving model (tree + resolver + threshold) from a
// bundle file or, without one, by bootstrap-training on a simulated month.
func loadServing(model string, threshold float64, seed int64) (*sigtree.Tree, func(string) *detect.LSTMDetector, float64, error) {
	if model != "" {
		b, err := bundle.LoadFile(model)
		if err != nil {
			return nil, nil, 0, err
		}
		if b.Threshold > 0 {
			threshold = b.Threshold
		}
		fmt.Printf("loaded bundle %s: %d detectors, %d templates, threshold %.3f\n",
			model, len(b.Detectors), b.Tree.Len(), threshold)
		return b.Tree, b.DetectorFor, threshold, nil
	}
	// Bootstrap: train on a simulated month of normal fleet traffic.
	fmt.Println("bootstrapping detector on simulated training archive...")
	simCfg := nfvpredict.SmallSimConfig()
	simCfg.Seed = seed
	simCfg.Months = 1
	simCfg.UpdateMonth = -1
	trace, err := nfvpredict.Simulate(simCfg)
	if err != nil {
		return nil, nil, 0, err
	}
	ds := pipeline.BuildDataset(trace, simCfg.Start, simCfg.Months)
	var streams [][]features.Event
	for _, v := range ds.VPEs {
		if ev := ds.CleanEvents(v, ds.MonthStart(0), ds.MonthStart(1), 72*time.Hour); len(ev) > 0 {
			streams = append(streams, ev)
		}
	}
	det := detect.NewLSTMDetector(detect.DefaultLSTMConfig())
	if err := det.Train(streams); err != nil {
		return nil, nil, 0, err
	}
	fmt.Printf("detector trained on %d vPE streams, %d templates known\n", len(streams), ds.Tree.Len())
	return ds.Tree, func(string) *detect.LSTMDetector { return det }, threshold, nil
}

func run(udp, tcp string, threshold float64, year int, seed int64, model, ckpt string, ckptEvery time.Duration) error {
	tree, resolve, threshold, err := loadServing(model, threshold, seed)
	if err != nil {
		return err
	}

	mcfg := ingest.DefaultMonitorConfig()
	mcfg.Threshold = threshold
	onWarning := func(w nfvpredict.Warning) {
		fmt.Printf("%s WARNING vpe=%s anomalies=%d first=%s\n",
			time.Now().Format(time.RFC3339), w.VPE, w.Size, w.Time.Format(time.RFC3339))
	}

	// Resume from the last checkpoint when one exists; any failure —
	// missing file, corruption, model mismatch after a retrain — degrades
	// to a cold start, never a refusal to serve.
	var mon *ingest.Monitor
	if ckpt != "" {
		if _, serr := os.Stat(ckpt); serr == nil {
			restored, rerr := ingest.RestoreMonitorFile(ckpt, mcfg, resolve, onWarning)
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "nfvmonitor: checkpoint %s unusable (%v), starting cold\n", ckpt, rerr)
			} else {
				mon = restored
				st := mon.Stats()
				fmt.Printf("restored checkpoint %s: %d hosts, %d messages, %d warnings\n",
					ckpt, st.ActiveHosts, st.Messages, st.Warnings)
			}
		}
	}
	if mon == nil {
		mon = ingest.NewMonitorWithResolver(mcfg, tree, resolve, onWarning)
	}

	scfg := ingest.DefaultServerConfig()
	scfg.UDPAddr, scfg.TCPAddr, scfg.Year = udp, tcp, year
	srv, err := ingest.NewServer(scfg, mon.HandleMessage)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.Start(ctx)
	defer srv.Close()
	if a := srv.UDPAddr(); a != nil {
		fmt.Println("listening UDP", a)
	}
	if a := srv.TCPAddr(); a != nil {
		fmt.Println("listening TCP", a)
	}

	// SIGHUP: hot-reload the bundle. A bundle that fails to load or
	// validate is rejected and the serving model stays active.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	saveCheckpoint := func(reason string) {
		if ckpt == "" {
			return
		}
		if err := mon.CheckpointFile(ckpt); err != nil {
			fmt.Fprintf(os.Stderr, "nfvmonitor: checkpoint failed (%s): %v\n", reason, err)
			return
		}
	}

	status := time.NewTicker(10 * time.Second)
	defer status.Stop()
	ckptTick := make(<-chan time.Time) // nil channel: disabled
	if ckpt != "" && ckptEvery > 0 {
		t := time.NewTicker(ckptEvery)
		defer t.Stop()
		ckptTick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			saveCheckpoint("shutdown")
			mst := mon.Stats()
			st := srv.Stats()
			fmt.Printf("\nshutting down: %d messages (%d malformed, %d dropped, %d sink panics), %d anomalies, %d warnings, %d hosts evicted\n",
				mst.Messages, st.Malformed, st.Dropped, st.SinkPanics, mst.Anomalies, mst.Warnings, mst.EvictedHosts)
			return nil
		case <-hup:
			if model == "" {
				fmt.Println("SIGHUP ignored: no -model bundle to reload")
				continue
			}
			b, lerr := bundle.LoadFile(model)
			if lerr != nil {
				fmt.Fprintf(os.Stderr, "nfvmonitor: hot-reload rejected, keeping serving bundle: %v\n", lerr)
				continue
			}
			mon.SwapModel(b.Tree, b.DetectorFor, b.Threshold)
			fmt.Printf("hot-reloaded bundle %s: %d detectors, %d templates, threshold %.3f\n",
				model, len(b.Detectors), b.Tree.Len(), b.Threshold)
			saveCheckpoint("post-reload")
		case <-ckptTick:
			saveCheckpoint("interval")
		case <-status.C:
			mst := mon.Stats()
			fmt.Printf("status: messages=%d anomalies=%d warnings=%d hosts=%d\n",
				mst.Messages, mst.Anomalies, mst.Warnings, mst.ActiveHosts)
		}
	}
}
