// Command replaylog replays a recorded JSONL syslog trace against a live
// syslog endpoint (such as cmd/nfvmonitor) over UDP or TCP, optionally
// compressing time by a speedup factor — the standard way to exercise the
// runtime monitor with a realistic workload.
//
// Usage:
//
//	replaylog -trace trace.jsonl -addr 127.0.0.1:5514 -proto udp -speedup 0
//	replaylog -scenario scenarios/regional-outage.yaml -addr 127.0.0.1:5514
//
// A speedup of 0 replays as fast as pacing allows; a speedup of 3600
// compresses an hour of trace time into one second of wall time. -rate
// paces by throughput instead (messages per second, overriding -speedup),
// and -loop replays the trace repeatedly — each pass shifts the trace
// timestamps forward by the trace's span, so a monitor under soak sees one
// continuous, monotonic stream (lifecycle drift/adaptation soaks run off
// exactly this).
//
// -scenario generates the trace from a scenario-harness YAML file
// (fleet + injected timeline, same seed → same trace) instead of reading
// one from disk — the bridge between the declarative scenario library and
// a live monitor. It is equivalent to `nfvscen run -dump-trace` followed
// by -trace on the dump.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/scenario"
)

func main() {
	tracePath := flag.String("trace", "trace.jsonl", "syslog trace (JSONL)")
	scenPath := flag.String("scenario", "", "generate the trace from this scenario YAML instead of -trace")
	addr := flag.String("addr", "127.0.0.1:5514", "destination address")
	proto := flag.String("proto", "udp", "udp or tcp")
	speedup := flag.Float64("speedup", 0, "trace-time compression factor; 0 = as fast as possible")
	rate := flag.Float64("rate", 0, "fixed pacing in messages per second (overrides -speedup); 0 = disabled")
	limit := flag.Int("limit", 0, "max messages to send per pass (0 = all)")
	loop := flag.Int("loop", 1, "replay passes; timestamps shift forward each pass (0 = loop forever)")
	flag.Parse()

	if err := run(*tracePath, *scenPath, *addr, *proto, *speedup, *rate, *limit, *loop); err != nil {
		fmt.Fprintln(os.Stderr, "replaylog:", err)
		os.Exit(1)
	}
}

// loadMessages reads the trace from disk, or synthesizes it from a
// scenario spec when scenPath is set.
func loadMessages(tracePath, scenPath string) ([]logfmt.Message, error) {
	if scenPath != "" {
		spec, err := scenario.LoadFile(scenPath)
		if err != nil {
			return nil, err
		}
		tr, err := spec.GenerateTrace()
		if err != nil {
			return nil, err
		}
		fmt.Printf("generated %d messages from scenario %q (seed %d)\n",
			len(tr.Messages), spec.Name, spec.Seed)
		return tr.Messages, nil
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return logfmt.NewReader(f).ReadAll()
}

func run(tracePath, scenPath, addr, proto string, speedup, rate float64, limit, loop int) error {
	msgs, err := loadMessages(tracePath, scenPath)
	if err != nil {
		return err
	}
	if limit > 0 && len(msgs) > limit {
		msgs = msgs[:limit]
	}
	if len(msgs) == 0 {
		src := tracePath
		if scenPath != "" {
			src = scenPath
		}
		return fmt.Errorf("no messages in %s", src)
	}

	conn, err := net.Dial(proto, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)

	// Per-pass timestamp shift: the trace span plus the mean inter-message
	// gap, so the seam between passes looks like one more ordinary gap
	// rather than a discontinuity (or a repeat of the same instant).
	traceStart := msgs[0].Time
	span := msgs[len(msgs)-1].Time.Sub(traceStart)
	if len(msgs) > 1 {
		span += span / time.Duration(len(msgs)-1)
	} else {
		span += time.Second
	}

	start := time.Now()
	sent := 0
	for pass := 0; loop <= 0 || pass < loop; pass++ {
		shift := time.Duration(pass) * span
		for i := range msgs {
			m := msgs[i]
			m.Time = m.Time.Add(shift)
			switch {
			case rate > 0:
				due := start.Add(time.Duration(float64(sent) * float64(time.Second) / rate))
				if d := time.Until(due); d > 0 {
					w.Flush()
					time.Sleep(d)
				}
			case speedup > 0:
				due := start.Add(time.Duration(float64(m.Time.Sub(traceStart)) / speedup))
				if d := time.Until(due); d > 0 {
					w.Flush()
					time.Sleep(d)
				}
			default:
				if sent%200 == 0 && proto == "udp" {
					// UDP has no backpressure; pace full-speed bursts.
					w.Flush()
					time.Sleep(2 * time.Millisecond)
				}
			}
			line := m.Format3164()
			if proto == "tcp" {
				// RFC 6587 octet counting.
				if _, err := fmt.Fprintf(w, "%d %s", len(line), line); err != nil {
					return err
				}
			} else {
				w.Flush() // one datagram per message
				if _, err := conn.Write([]byte(line)); err != nil {
					return err
				}
			}
			sent++
		}
		if loop != 1 {
			if err := w.Flush(); err != nil {
				return err
			}
			fmt.Printf("pass %d done: %d messages sent\n", pass+1, sent)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("replayed %d messages (%d passes, %s trace time per pass) in %v\n",
		sent, sent/len(msgs), msgs[len(msgs)-1].Time.Sub(traceStart).Round(time.Second),
		time.Since(start).Round(time.Millisecond))
	return nil
}
