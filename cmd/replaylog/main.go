// Command replaylog replays a recorded JSONL syslog trace against a live
// syslog endpoint (such as cmd/nfvmonitor) over UDP or TCP, optionally
// compressing time by a speedup factor — the standard way to exercise the
// runtime monitor with a realistic workload.
//
// Usage:
//
//	replaylog -trace trace.jsonl -addr 127.0.0.1:5514 -proto udp -speedup 0
//
// A speedup of 0 replays as fast as pacing allows; a speedup of 3600
// compresses an hour of trace time into one second of wall time.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"nfvpredict/internal/logfmt"
)

func main() {
	tracePath := flag.String("trace", "trace.jsonl", "syslog trace (JSONL)")
	addr := flag.String("addr", "127.0.0.1:5514", "destination address")
	proto := flag.String("proto", "udp", "udp or tcp")
	speedup := flag.Float64("speedup", 0, "trace-time compression factor; 0 = as fast as possible")
	limit := flag.Int("limit", 0, "max messages to send (0 = all)")
	flag.Parse()

	if err := run(*tracePath, *addr, *proto, *speedup, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "replaylog:", err)
		os.Exit(1)
	}
}

func run(tracePath, addr, proto string, speedup float64, limit int) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	msgs, err := logfmt.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	if limit > 0 && len(msgs) > limit {
		msgs = msgs[:limit]
	}
	if len(msgs) == 0 {
		return fmt.Errorf("no messages in %s", tracePath)
	}

	conn, err := net.Dial(proto, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)

	start := time.Now()
	traceStart := msgs[0].Time
	sent := 0
	for i := range msgs {
		m := &msgs[i]
		if speedup > 0 {
			due := start.Add(time.Duration(float64(m.Time.Sub(traceStart)) / speedup))
			if d := time.Until(due); d > 0 {
				w.Flush()
				time.Sleep(d)
			}
		} else if sent%200 == 0 && proto == "udp" {
			// UDP has no backpressure; pace full-speed bursts.
			w.Flush()
			time.Sleep(2 * time.Millisecond)
		}
		line := m.Format3164()
		if proto == "tcp" {
			// RFC 6587 octet counting.
			if _, err := fmt.Fprintf(w, "%d %s", len(line), line); err != nil {
				return err
			}
		} else {
			w.Flush() // one datagram per message
			if _, err := conn.Write([]byte(line)); err != nil {
				return err
			}
		}
		sent++
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("replayed %d messages (%s trace time) in %v\n",
		sent, msgs[len(msgs)-1].Time.Sub(traceStart).Round(time.Second), time.Since(start).Round(time.Millisecond))
	return nil
}
