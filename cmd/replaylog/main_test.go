package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nfvpredict/internal/logfmt"
)

// writeTrace writes a small JSONL trace and returns its path.
func writeTrace(t *testing.T, msgs []logfmt.Message) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := logfmt.NewWriter(f)
	for i := range msgs {
		if err := w.Write(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoopShiftsTimestamps: -loop replays the trace N times and each pass
// shifts the RFC 3164 timestamps forward, so the receiver sees one
// monotonic stream rather than N copies of the same minute.
func TestLoopShiftsTimestamps(t *testing.T) {
	base := time.Date(2018, 3, 1, 10, 0, 0, 0, time.UTC)
	var msgs []logfmt.Message
	for i := 0; i < 4; i++ {
		msgs = append(msgs, logfmt.Message{
			Time: base.Add(time.Duration(i) * time.Minute),
			Host: "vpe01", Tag: "rpd", Text: "bgp keepalive exchanged with peer",
		})
	}
	trace := writeTrace(t, msgs)

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	const loops = 3
	done := make(chan error, 1)
	go func() { done <- run(trace, "", pc.LocalAddr().String(), "udp", 0, 0, 0, loops) }()

	var got []logfmt.Message
	buf := make([]byte, 64*1024)
	pc.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(got) < loops*len(msgs) {
		n, _, rerr := pc.ReadFrom(buf)
		if rerr != nil {
			t.Fatalf("received %d/%d datagrams: %v", len(got), loops*len(msgs), rerr)
		}
		m, perr := logfmt.Parse3164(string(buf[:n]), base.Year())
		if perr != nil {
			t.Fatalf("datagram %d: %v", len(got), perr)
		}
		got = append(got, m)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatalf("timestamps not monotonic across passes: %v then %v (msg %d)", got[i-1].Time, got[i].Time, i)
		}
	}
	// The second pass starts a full span after the first, not at the seam.
	if !got[len(msgs)].Time.After(got[len(msgs)-1].Time) {
		t.Fatalf("pass 2 did not shift: %v vs %v", got[len(msgs)].Time, got[len(msgs)-1].Time)
	}
}

// TestScenarioSource: -scenario synthesizes the trace from a scenario
// spec instead of a JSONL file, deterministically under its seed.
func TestScenarioSource(t *testing.T) {
	doc := `
name: replay-source
seed: 9
fleet:
  vpes: 3
  months: 2
  start: 2017-01-01
  base_rate_per_hour: 0.5
  mean_fault_gap_hours: 2000
train:
  months: 1
`
	path := filepath.Join(t.TempDir(), "scen.yaml")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := loadMessages("", path)
	if err != nil {
		t.Fatalf("loadMessages: %v", err)
	}
	if len(a) == 0 {
		t.Fatal("scenario produced no messages")
	}
	b, err := loadMessages("", path)
	if err != nil {
		t.Fatalf("loadMessages (second): %v", err)
	}
	if len(a) != len(b) || !a[0].Time.Equal(b[0].Time) || a[len(a)-1].Text != b[len(b)-1].Text {
		t.Fatalf("scenario trace not deterministic: %d vs %d messages", len(a), len(b))
	}
}

// TestRatePacing: -rate bounds throughput; 8 messages at 40/s must take at
// least ~175ms.
func TestRatePacing(t *testing.T) {
	base := time.Date(2018, 3, 1, 10, 0, 0, 0, time.UTC)
	var msgs []logfmt.Message
	for i := 0; i < 8; i++ {
		msgs = append(msgs, logfmt.Message{
			Time: base.Add(time.Duration(i) * time.Second),
			Host: "vpe01", Tag: "rpd", Text: "interface statistics poll completed",
		})
	}
	trace := writeTrace(t, msgs)

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			if _, _, rerr := pc.ReadFrom(buf); rerr != nil {
				return
			}
		}
	}()

	start := time.Now()
	if err := run(trace, "", pc.LocalAddr().String(), "udp", 0, 40, 0, 1); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("rate pacing not applied: 8 msgs at 40/s took %v", elapsed)
	}
}
