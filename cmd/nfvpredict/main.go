// Command nfvpredict runs the paper's full offline analysis end to end on
// a simulated deployment: template extraction, vPE clustering, per-cluster
// LSTM training, walk-forward monthly evaluation with drift-triggered
// transfer-learning adaptation, and the final report (operating point,
// monthly F-measure series, Figure 8 table).
//
// Usage:
//
//	nfvpredict -vpes 10 -months 10 -variant adapt -method lstm
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nfvpredict"
)

func main() {
	vpes := flag.Int("vpes", 10, "number of vPEs")
	months := flag.Int("months", 8, "horizon in months")
	rate := flag.Float64("rate", 1.2, "mean normal messages per hour per vPE")
	seed := flag.Int64("seed", 1, "simulation seed")
	updateMonth := flag.Int("update-month", 5, "system-update month (-1 disables)")
	variant := flag.String("variant", "adapt", "system variant: baseline|cust|adapt")
	method := flag.String("method", "lstm", "detector: lstm|autoencoder|ocsvm")
	flag.Parse()

	if err := run(*vpes, *months, *rate, *seed, *updateMonth, *variant, *method); err != nil {
		fmt.Fprintln(os.Stderr, "nfvpredict:", err)
		os.Exit(1)
	}
}

func run(vpes, months int, rate float64, seed int64, updateMonth int, variant, method string) error {
	simCfg := nfvpredict.DefaultSimConfig()
	simCfg.NumVPEs = vpes
	simCfg.Months = months
	simCfg.BaseRatePerHour = rate
	simCfg.Seed = seed
	simCfg.UpdateMonth = updateMonth

	cfg := nfvpredict.DefaultConfig()
	switch variant {
	case "baseline":
		cfg.Variant = nfvpredict.Baseline
	case "cust":
		cfg.Variant = nfvpredict.Customized
	case "adapt":
		cfg.Variant = nfvpredict.CustomizedAdaptive
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	switch method {
	case "lstm":
		cfg.Method = nfvpredict.MethodLSTM
	case "autoencoder":
		cfg.Method = nfvpredict.MethodAutoencoder
	case "ocsvm":
		cfg.Method = nfvpredict.MethodOCSVM
	default:
		return fmt.Errorf("unknown method %q", method)
	}

	fmt.Printf("simulating %d vPEs over %d months (seed %d)...\n", vpes, months, seed)
	t0 := time.Now()
	trace, err := nfvpredict.Simulate(simCfg)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d messages, %d tickets (%v)\n",
		len(trace.Messages), len(trace.Tickets), time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	sys, err := nfvpredict.AnalyzeTrace(trace, simCfg.Start, simCfg.Months, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("analysis complete in %v\n\n", time.Since(t0).Round(time.Millisecond))
	fmt.Print(sys.Report())
	return nil
}
