// Command loggen generates a synthetic NFV deployment trace — the
// substitute for the paper's proprietary 18-month vPE dataset — and writes
// it to disk: syslog as JSONL (one message per line) and tickets as CSV.
//
// Usage:
//
//	loggen -out trace.jsonl -tickets tickets.csv -vpes 38 -months 18 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/ticket"
)

func main() {
	out := flag.String("out", "trace.jsonl", "syslog output file (JSONL)")
	ticketsOut := flag.String("tickets", "tickets.csv", "tickets output file (CSV)")
	vpes := flag.Int("vpes", 38, "number of vPEs")
	ppes := flag.Int("ppes", 0, "number of pPEs (volume-comparison fleet)")
	months := flag.Int("months", 18, "horizon in months")
	rate := flag.Float64("rate", 1.5, "mean normal messages per hour per vPE")
	seed := flag.Int64("seed", 1, "simulation seed")
	updateMonth := flag.Int("update-month", 14, "system-update month (-1 disables)")
	flag.Parse()

	if err := run(*out, *ticketsOut, *vpes, *ppes, *months, *rate, *seed, *updateMonth); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
}

func run(out, ticketsOut string, vpes, ppes, months int, rate float64, seed int64, updateMonth int) error {
	cfg := nfvsim.DefaultConfig()
	cfg.NumVPEs = vpes
	cfg.NumPPEs = ppes
	cfg.Months = months
	cfg.BaseRatePerHour = rate
	cfg.Seed = seed
	cfg.UpdateMonth = updateMonth

	start := time.Now()
	d, err := nfvsim.New(cfg)
	if err != nil {
		return err
	}
	tr, err := d.Generate()
	if err != nil {
		return err
	}
	fmt.Printf("generated %d messages, %d tickets in %v\n",
		len(tr.Messages), len(tr.Tickets), time.Since(start).Round(time.Millisecond))

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := logfmt.NewWriter(f)
	for i := range tr.Messages {
		if err := w.Write(&tr.Messages[i]); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote syslog to %s\n", out)

	tf, err := os.Create(ticketsOut)
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := ticket.WriteCSV(tf, tr.Tickets); err != nil {
		return err
	}
	fmt.Printf("wrote tickets to %s\n", ticketsOut)
	return nil
}
