package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkMonitorHandleMessage-8 \t  500000\t      4412 ns/op\t     464 B/op\t      15 allocs/op")
	if !ok {
		t.Fatal("expected a benchmark line to parse")
	}
	if r.Name != "BenchmarkMonitorHandleMessage" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", r.Name)
	}
	if r.Iterations != 500000 || r.NsPerOp != 4412 || r.BPerOp != 464 || r.AllocsPerOp != 15 {
		t.Errorf("parsed %+v", r)
	}
	want := 1e9 / 4412.0
	if r.MsgsPerSec != want {
		t.Errorf("msgs_per_sec = %v, want %v", r.MsgsPerSec, want)
	}
}

func TestParseLineCustomUnit(t *testing.T) {
	r, ok := parseLine("BenchmarkStreamPush 	 1000000	      2000 ns/op	        12.50 MB/s")
	if !ok {
		t.Fatal("expected parse")
	}
	if r.Extra["MB/s"] != 12.5 {
		t.Errorf("extra = %v", r.Extra)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	nfvpredict/internal/ingest	6.692s",
		"BenchmarkBroken abc 123 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted noise", line)
		}
	}
}

func TestDeriveShardSpeedups(t *testing.T) {
	results := []result{
		{Name: "BenchmarkMonitorParallelShards1", MsgsPerSec: 100000},
		{Name: "BenchmarkMonitorParallelShards4", MsgsPerSec: 320000},
		{Name: "BenchmarkMonitorParallelShards8", MsgsPerSec: 550000},
		{Name: "BenchmarkStepLogProbs", MsgsPerSec: 50000},
	}
	deriveShardSpeedups(results)
	if results[0].SpeedupVsShards1 != 1 {
		t.Errorf("baseline speedup = %v, want 1", results[0].SpeedupVsShards1)
	}
	if results[1].SpeedupVsShards1 != 3.2 {
		t.Errorf("Shards4 speedup = %v, want 3.2", results[1].SpeedupVsShards1)
	}
	if results[2].SpeedupVsShards1 != 5.5 {
		t.Errorf("Shards8 speedup = %v, want 5.5", results[2].SpeedupVsShards1)
	}
	if results[3].SpeedupVsShards1 != 0 {
		t.Errorf("non-shard row got a speedup: %v", results[3].SpeedupVsShards1)
	}
}

func TestDeriveSpanOverhead(t *testing.T) {
	results := []result{
		{Name: "BenchmarkMonitorHandleMessage", NsPerOp: 3200},
		{Name: "BenchmarkMonitorHandleMessageSpans", NsPerOp: 3328},
		{Name: "BenchmarkStepLogProbs", NsPerOp: 2000},
	}
	deriveSpanOverhead(results)
	if results[1].SpanOverheadVsBase != 1.04 {
		t.Errorf("span overhead = %v, want 1.04", results[1].SpanOverheadVsBase)
	}
	if results[0].SpanOverheadVsBase != 0 || results[2].SpanOverheadVsBase != 0 {
		t.Errorf("non-span rows got an overhead ratio: %+v", results)
	}
}

func TestDeriveSpanOverheadNoBaseline(t *testing.T) {
	results := []result{{Name: "BenchmarkMonitorHandleMessageSpans", NsPerOp: 3328}}
	deriveSpanOverhead(results)
	if results[0].SpanOverheadVsBase != 0 {
		t.Errorf("overhead without a baseline should stay 0, got %v", results[0].SpanOverheadVsBase)
	}
}

func TestDeriveBaselineDeltas(t *testing.T) {
	results := []result{
		{Name: "BenchmarkMonitorHandleMessage", BPerOp: 0},
		{Name: "BenchmarkStepLogProbs", BPerOp: 32},
		{Name: "BenchmarkBrandNew", BPerOp: 8},
	}
	base := map[string]float64{
		"BenchmarkMonitorHandleMessage": 464,
		"BenchmarkStepLogProbs":         32,
	}
	deriveBaselineDeltas(results, base)
	if results[0].BPerOpDelta == nil || *results[0].BPerOpDelta != -464 {
		t.Errorf("HandleMessage delta = %v, want -464", results[0].BPerOpDelta)
	}
	if results[1].BPerOpDelta == nil || *results[1].BPerOpDelta != 0 {
		t.Errorf("unchanged row delta = %v, want explicit 0", results[1].BPerOpDelta)
	}
	if results[2].BPerOpDelta != nil {
		t.Errorf("row absent from baseline got a delta: %v", *results[2].BPerOpDelta)
	}
	// The zero delta must survive JSON encoding (the reason for the pointer).
	out, err := json.Marshal(results[1])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["b_per_op_delta"]; !ok {
		t.Errorf("zero delta dropped from JSON: %s", out)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, []byte(`[
		{"name": "BenchmarkMonitorHandleMessage", "b_per_op": 464, "allocs_per_op": 15}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base["BenchmarkMonitorHandleMessage"] != 464 {
		t.Errorf("baseline = %v", base)
	}
	// Missing file: first run of a fresh checkout, not an error.
	if base, err := loadBaseline(filepath.Join(dir, "absent.json")); err != nil || base != nil {
		t.Errorf("missing baseline: base=%v err=%v", base, err)
	}
	// Corrupt file: an error, not silent no-deltas.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil {
		t.Error("corrupt baseline should error")
	}
}

func TestDeriveShardSpeedupsNoBaseline(t *testing.T) {
	results := []result{{Name: "BenchmarkMonitorParallelShards4", MsgsPerSec: 320000}}
	deriveShardSpeedups(results)
	if results[0].SpeedupVsShards1 != 0 {
		t.Errorf("speedup without a Shards1 baseline should stay 0, got %v", results[0].SpeedupVsShards1)
	}
}
