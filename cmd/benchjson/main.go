// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark result line.
//
// Each object carries the benchmark name (with the -GOMAXPROCS suffix
// stripped), the iteration count, every "value unit" pair the benchmark
// reported (ns/op, B/op, allocs/op, and any custom ReportMetric units),
// and a derived msgs_per_sec = 1e9 / ns_per_op for throughput-style
// benchmarks where one iteration scores one message.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson > BENCH_serving.json
//
// With -baseline pointing at a previously committed output file, each row
// that also appears in the baseline gains b_per_op_delta (this run's B/op
// minus the baseline's), so allocation regressions show up as a positive
// delta right in the artifact diff.
//
// Non-benchmark lines (goos/goarch headers, PASS/ok trailers) are ignored,
// so piping full `go test` output is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec,omitempty"`

	// SpeedupVsShards1 is derived for BenchmarkMonitorParallelShardsN
	// rows: this row's msgs_per_sec over the Shards1 row's, i.e. the
	// scaling curve of the sharded scoring path in one number per row.
	SpeedupVsShards1 float64 `json:"speedup_vs_shards1,omitempty"`

	// SpanOverheadVsBase is derived for the MonitorHandleMessageSpans
	// row: its ns/op over the untraced MonitorHandleMessage baseline,
	// i.e. the tracing stack's cost ratio at the default 1-in-16
	// sampling rate (1.0 = free; the ci gate holds it at ≤ 1.05).
	SpanOverheadVsBase float64 `json:"span_overhead_vs_base,omitempty"`

	// BPerOpDelta is this row's B/op minus the same benchmark's B/op in
	// the -baseline file; present only when the baseline has the row. A
	// pointer so a delta of exactly 0 (no allocation change) still shows,
	// unlike the omitempty float fields.
	BPerOpDelta *float64 `json:"b_per_op_delta,omitempty"`

	// Extra holds any "value unit" pairs beyond the three standard ones,
	// e.g. MB/s from SetBytes or custom ReportMetric units.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// shardsPrefix is the benchmark family that gets the speedup_vs_shards1
// derived field; the baseline row is <prefix>1.
const shardsPrefix = "BenchmarkMonitorParallelShards"

// deriveShardSpeedups fills SpeedupVsShards1 on every shard-scaling row,
// including the baseline itself (1.0), once all rows are parsed.
func deriveShardSpeedups(results []result) {
	var base float64
	for _, r := range results {
		if r.Name == shardsPrefix+"1" && r.MsgsPerSec > 0 {
			base = r.MsgsPerSec
		}
	}
	if base == 0 {
		return
	}
	for i := range results {
		if strings.HasPrefix(results[i].Name, shardsPrefix) && results[i].MsgsPerSec > 0 {
			results[i].SpeedupVsShards1 = results[i].MsgsPerSec / base
		}
	}
}

// deriveSpanOverhead fills SpanOverheadVsBase on the traced HandleMessage
// row once its untraced baseline is parsed.
func deriveSpanOverhead(results []result) {
	var base float64
	for _, r := range results {
		if r.Name == "BenchmarkMonitorHandleMessage" && r.NsPerOp > 0 {
			base = r.NsPerOp
		}
	}
	if base == 0 {
		return
	}
	for i := range results {
		if results[i].Name == "BenchmarkMonitorHandleMessageSpans" && results[i].NsPerOp > 0 {
			results[i].SpanOverheadVsBase = results[i].NsPerOp / base
		}
	}
}

// deriveBaselineDeltas fills BPerOpDelta on every row whose name appears
// in base (a name → baseline B/op map).
func deriveBaselineDeltas(results []result, base map[string]float64) {
	for i := range results {
		if old, ok := base[results[i].Name]; ok {
			d := results[i].BPerOp - old
			results[i].BPerOpDelta = &d
		}
	}
}

// loadBaseline reads a previous benchjson output file into a name → B/op
// map. A missing baseline file is not an error — the first run of a fresh
// checkout has nothing to diff against — but an unparseable one is.
func loadBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var rows []result
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	base := make(map[string]float64, len(rows))
	for _, r := range rows {
		base[r.Name] = r.BPerOp
	}
	return base, nil
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   500000   4412 ns/op   464 B/op   15 allocs/op
//
// and reports ok=false for anything that does not look like one.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix so names are stable across hosts.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
			if val > 0 {
				r.MsgsPerSec = 1e9 / val
			}
		case "B/op":
			r.BPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = val
		}
	}
	return r, true
}

func main() {
	baselinePath := flag.String("baseline", "",
		"previous benchjson output to diff B/op against (adds b_per_op_delta)")
	flag.Parse()
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	deriveShardSpeedups(results)
	deriveSpanOverhead(results)
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		deriveBaselineDeltas(results, base)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
