// Command nfvscen runs declarative full-stack failure scenarios: YAML
// documents describing a simulated vPE fleet, a timed event timeline
// (fault episodes, anomaly bursts, chaos fault-point arming, adaptation
// triggers, checkpoint parity probes, degradation excursions), and
// assertions on the run's outcome. Each run drives the real serving
// stack: nfvsim trace → syslog over TCP → ingest.Server → sharded
// Monitor (→ lifecycle) → eval against the ticket store.
//
// Usage:
//
//	nfvscen validate scenarios/              # lint every scenario file
//	nfvscen run scenarios/                   # run all, human-readable
//	nfvscen run -json scenarios/outage.yaml  # machine-readable report
//	nfvscen run -v -dump-trace t.jsonl f.yaml
//
// A path may be a file or a directory (expanded to *.yaml / *.yml).
// Exit status: 0 all passed, 1 validation error or failed assertion,
// 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nfvpredict/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = validateCmd(os.Args[2:])
	case "run":
		err = runCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "nfvscen: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvscen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  nfvscen validate <path>...             lint scenario files (exit 1 on any error)
  nfvscen run [flags] <path>...          run scenarios end-to-end
    -json            emit the machine-readable report array on stdout
    -v               log phases and timeline events as they execute
    -dump-trace FILE write the generated trace as logfmt JSONL (replaylog input)

A path may be a file or a directory (expanded to *.yaml / *.yml).
`)
}

// expand resolves files and directories into a sorted scenario file list.
func expand(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			files = append(files, p)
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if ext := filepath.Ext(e.Name()); ext == ".yaml" || ext == ".yml" {
				files = append(files, filepath.Join(p, e.Name()))
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no scenario files found")
	}
	sort.Strings(files)
	return files, nil
}

func validateCmd(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("validate: no paths given")
	}
	files, err := expand(fs.Args())
	if err != nil {
		return err
	}
	bad := 0
	for _, f := range files {
		if _, err := scenario.LoadFile(f); err != nil {
			bad++
			fmt.Fprintln(os.Stderr, err)
		} else {
			fmt.Printf("%s: ok\n", f)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d scenario file(s) invalid", bad, len(files))
	}
	return nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the report array as JSON on stdout")
	verbose := fs.Bool("v", false, "log phases and timeline events")
	dumpTrace := fs.String("dump-trace", "", "write the generated trace as logfmt JSONL (single scenario only)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("run: no paths given")
	}
	files, err := expand(fs.Args())
	if err != nil {
		return err
	}
	if *dumpTrace != "" && len(files) > 1 {
		return fmt.Errorf("run: -dump-trace needs exactly one scenario, got %d", len(files))
	}

	opts := scenario.Options{DumpTrace: *dumpTrace}
	if *verbose {
		opts.Log = log.New(os.Stderr, "", log.LstdFlags)
	}
	var reports []*scenario.Report
	failed := 0
	for _, f := range files {
		spec, err := scenario.LoadFile(f)
		if err != nil {
			return err
		}
		rep, err := scenario.Run(spec, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		reports = append(reports, rep)
		if !rep.Passed {
			failed++
		}
		if !*jsonOut {
			printReport(rep)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenario(s) failed", failed, len(reports))
	}
	if !*jsonOut {
		fmt.Printf("all %d scenario(s) passed\n", len(reports))
	}
	return nil
}

func printReport(rep *scenario.Report) {
	var phases []string
	var total int64
	for _, p := range rep.Phases {
		phases = append(phases, fmt.Sprintf("%s %dms", p.Name, p.Millis))
		total += p.Millis
	}
	status := "PASS"
	if !rep.Passed {
		status = "FAIL"
	}
	fmt.Printf("%s: %s (%dms: %s)\n", rep.Scenario, status, total, strings.Join(phases, ", "))
	fmt.Printf("  sim: %d messages, %d tickets, %d injected events\n",
		rep.Sim.Messages, rep.Sim.Tickets, rep.Sim.Injections)
	fmt.Printf("  serve: %d received, %d warnings, %d anomalies, shards=%d\n",
		rep.Serve.Received, rep.Serve.Warnings, rep.Serve.Anomalies, rep.Serve.Shards)
	if rep.Eval != nil {
		fmt.Printf("  eval: %d/%d tickets detected, %d false alarms (%.2f/day), %d early\n",
			rep.Eval.DetectedTickets, rep.Eval.Tickets, rep.Eval.FalseAlarms,
			rep.Eval.FalseAlarmsPerDay, rep.Eval.EarlyTickets)
	}
	if rep.Lifecycle != nil {
		fmt.Printf("  lifecycle: %d cycles, %d promotions, breaker %s\n",
			rep.Lifecycle.Cycles, rep.Lifecycle.Promotions, rep.Lifecycle.Breaker)
	}
	for _, ev := range rep.Events {
		fmt.Printf("  event %-10s at %-8s %s\n", ev.Kind, ev.At, ev.Detail)
	}
	for _, a := range rep.Assertions {
		mark := "ok"
		if !a.OK {
			mark = "FAIL"
		}
		fmt.Printf("  assert %-28s %-4s %s\n", a.Name, mark, a.Detail)
	}
}
