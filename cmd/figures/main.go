// Command figures regenerates the paper's evaluation figures from the
// simulated deployment and prints the data series as text tables.
//
// Usage:
//
//	figures -fig all                 # every figure (slow: trains models)
//	figures -fig 1a|1b|2|3|update|volume     # measurement-study figures
//	figures -fig 5|6|7|8|reduction           # model figures
//	figures -fig summary                     # eval.Summary as JSON
//	figures -fig stats               # all measurement-study figures
//	figures -seed 7 -months 10 -vpes 12      # override the model fleet
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nfvpredict/internal/figures"
	"nfvpredict/internal/nfvsim"
	"nfvpredict/internal/pipeline"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1a,1b,2,3,update,volume,5,6,7,8,reduction,summary,stats,all")
	seed := flag.Int64("seed", 1, "simulation seed")
	months := flag.Int("months", 0, "override model-fleet horizon months")
	vpes := flag.Int("vpes", 0, "override model-fleet size")
	flag.Parse()

	if err := run(*fig, *seed, *months, *vpes); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(fig string, seed int64, months, vpes int) error {
	out := os.Stdout
	wantStats := map[string]bool{"1a": true, "1b": true, "2": true, "3": true, "update": true, "volume": true, "stats": true, "all": true}
	wantModel := map[string]bool{"5": true, "6": true, "7": true, "8": true, "reduction": true, "summary": true, "all": true}

	if wantStats[fig] {
		cfg := figures.StatsSimConfig()
		cfg.Seed = seed
		fmt.Fprintf(out, "== measurement-study fleet: %d vPEs + %d pPEs, %d months (seed %d) ==\n",
			cfg.NumVPEs, cfg.NumPPEs, cfg.Months, cfg.Seed)
		start := time.Now()
		d, err := nfvsim.New(cfg)
		if err != nil {
			return err
		}
		tr, err := d.Generate()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "generated %d messages, %d tickets in %v\n\n", len(tr.Messages), len(tr.Tickets), time.Since(start).Round(time.Millisecond))
		switch fig {
		case "1a":
			figures.Fig1a(out, tr, cfg.Start, cfg.Months)
		case "1b":
			figures.Fig1b(out, tr)
		case "2":
			figures.Fig2(out, tr, cfg.Start, cfg.Months)
		case "volume":
			figures.Volume(out, tr)
		case "3", "update", "stats", "all":
			ds := pipeline.BuildDataset(tr, cfg.Start, cfg.Months)
			if fig == "3" {
				figures.Fig3(out, ds)
			} else if fig == "update" {
				figures.UpdateShift(out, ds, tr, cfg.UpdateMonth)
			} else {
				figures.Fig1a(out, tr, cfg.Start, cfg.Months)
				fmt.Fprintln(out)
				figures.Fig1b(out, tr)
				fmt.Fprintln(out)
				figures.Fig2(out, tr, cfg.Start, cfg.Months)
				fmt.Fprintln(out)
				figures.Fig3(out, ds)
				fmt.Fprintln(out)
				figures.UpdateShift(out, ds, tr, cfg.UpdateMonth)
				fmt.Fprintln(out)
				figures.Volume(out, tr)
			}
		default:
			return fmt.Errorf("unknown figure %q", fig)
		}
		fmt.Fprintln(out)
	}

	if wantModel[fig] {
		simCfg := figures.ModelSimConfig()
		simCfg.Seed = seed
		if months > 0 {
			simCfg.Months = months
			simCfg.UpdateMonth = months * 2 / 3
		}
		if vpes > 0 {
			simCfg.NumVPEs = vpes
		}
		pcfg := figures.ModelPipelineConfig()
		fmt.Fprintf(out, "== model fleet: %d vPEs, %d months, update month %d (seed %d) ==\n",
			simCfg.NumVPEs, simCfg.Months, simCfg.UpdateMonth, simCfg.Seed)
		start := time.Now()
		d, err := nfvsim.New(simCfg)
		if err != nil {
			return err
		}
		tr, err := d.Generate()
		if err != nil {
			return err
		}
		ds := pipeline.BuildDataset(tr, simCfg.Start, simCfg.Months)
		fmt.Fprintf(out, "dataset ready: %d messages, %d tickets, %d templates (%v)\n\n",
			len(tr.Messages), len(tr.Tickets), ds.Tree.Len(), time.Since(start).Round(time.Millisecond))
		runFig := func(name string) error {
			t0 := time.Now()
			var err error
			switch name {
			case "5":
				_, err = figures.Fig5(out, ds, pcfg)
			case "6":
				_, err = figures.Fig6(out, ds, pcfg)
			case "7":
				_, err = figures.Fig7(out, ds, pcfg)
			case "8":
				_, err = figures.Fig8(out, ds, pcfg)
			case "summary":
				_, err = figures.Summary(out, ds, pcfg)
			case "reduction":
				rCfg := figures.ReductionSimConfig()
				rCfg.Seed = simCfg.Seed
				rd, rerr := nfvsim.New(rCfg)
				if rerr != nil {
					return rerr
				}
				rtr, rerr := rd.Generate()
				if rerr != nil {
					return rerr
				}
				rds := pipeline.BuildDataset(rtr, rCfg.Start, rCfg.Months)
				_, _, err = figures.Reduction(out, rds, pcfg, rCfg.UpdateMonth-1, rCfg.UpdateMonth)
			}
			fmt.Fprintf(out, "(%s took %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
			return err
		}
		if fig == "all" {
			for _, name := range []string{"5", "6", "7", "8", "reduction"} {
				if err := runFig(name); err != nil {
					return err
				}
			}
		} else if err := runFig(fig); err != nil {
			return err
		}
	}

	if !wantStats[fig] && !wantModel[fig] {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
