// Command nfvtrain trains a deployable model bundle — signature tree,
// per-cluster LSTM detectors, cluster assignment, and a recommended
// operating threshold — from a recorded trace (JSONL syslog + CSV tickets,
// as written by cmd/loggen). cmd/nfvmonitor serves the bundle against live
// syslog.
//
// Training is observable instead of silent: every per-cluster detector
// reports per-epoch loss, tokens/sec, and over-sampling-round counters
// into a metrics registry (prefixed cluster<i>_), and with -admin the
// registry is served live over HTTP (/metrics, /healthz, /debug/pprof) so
// a long training run can be watched and profiled from outside.
//
// Usage:
//
//	nfvtrain -trace trace.jsonl -tickets tickets.csv -out model.bundle \
//	         -start 2016-10-01 -months 2 -admin :9091
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"nfvpredict/internal/bundle"
	"nfvpredict/internal/cluster"
	"nfvpredict/internal/detect"
	"nfvpredict/internal/eval"
	"nfvpredict/internal/features"
	"nfvpredict/internal/logfmt"
	"nfvpredict/internal/obs"
	"nfvpredict/internal/pipeline"
	"nfvpredict/internal/ticket"
)

func main() {
	tracePath := flag.String("trace", "trace.jsonl", "syslog trace (JSONL)")
	ticketsPath := flag.String("tickets", "tickets.csv", "tickets (CSV)")
	out := flag.String("out", "model.bundle", "output bundle path")
	startStr := flag.String("start", "", "trace start (YYYY-MM-DD; default: first message day)")
	months := flag.Int("months", 1, "months of data to train on")
	kMax := flag.Int("kmax", 8, "max clusters for modularity selection")
	admin := flag.String("admin", "", "admin HTTP listen address serving /metrics, /healthz, /debug/pprof during training (empty disables)")
	verbose := flag.Bool("v", false, "verbose (debug-level) logging")
	flag.Parse()

	if err := run(*tracePath, *ticketsPath, *out, *startStr, *months, *kMax, *admin, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "nfvtrain:", err)
		os.Exit(1)
	}
}

func run(tracePath, ticketsPath, out, startStr string, months, kMax int, admin string, verbose bool) error {
	level := obs.LevelInfo
	if verbose {
		level = obs.LevelDebug
	}
	log := obs.NewLogger(os.Stdout, level)
	reg := obs.NewRegistry()
	clustersTrained := reg.Counter("train_clusters_done_total", "Cluster detectors fully trained.")
	trainSeconds := reg.Histogram("train_cluster_seconds",
		"Wall time per cluster training.", obs.ExpBuckets(0.01, 4, 10))

	if admin != "" {
		ln, err := net.Listen("tcp", admin)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		srv := &http.Server{Handler: obs.NewAdminMux(obs.AdminConfig{Registry: reg})}
		go srv.Serve(ln)
		defer srv.Close()
		log.Info("admin surface up", "addr", ln.Addr(), "endpoints", "/metrics /healthz /debug/pprof")
	}
	tf, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	msgs, err := logfmt.NewReader(tf).ReadAll()
	if err != nil {
		return err
	}
	if len(msgs) == 0 {
		return fmt.Errorf("no messages in %s", tracePath)
	}
	kf, err := os.Open(ticketsPath)
	if err != nil {
		return err
	}
	defer kf.Close()
	tickets, err := ticket.ReadCSV(kf)
	if err != nil {
		return err
	}

	start := msgs[0].Time.Truncate(24 * time.Hour)
	if startStr != "" {
		start, err = time.Parse("2006-01-02", startStr)
		if err != nil {
			return fmt.Errorf("parsing -start: %w", err)
		}
	}
	hosts := map[string]bool{}
	for i := range msgs {
		hosts[msgs[i].Host] = true
	}
	var vpes []string
	for h := range hosts {
		vpes = append(vpes, h)
	}
	log.Info("loaded trace", "messages", len(msgs), "hosts", len(vpes), "tickets", len(tickets))

	ds := pipeline.BuildDatasetFromMessages(msgs, tickets, vpes, start, months)
	cfg := pipeline.DefaultConfig()
	cfg.KMax = kMax

	// Cluster on the first month's histograms.
	hists := make(map[string]cluster.Histogram, len(ds.VPEs))
	for _, v := range ds.VPEs {
		hists[v] = ds.MonthHistogram(v, 0)
	}
	cl, err := cluster.SelectK(hists, cfg.KMin, cfg.KMax, cfg.ClusterDim, cfg.LSTM.Seed)
	if err != nil {
		return err
	}
	log.Info("clustered fleet", "vpes", len(ds.VPEs), "k", cl.K)

	// Train one detector per cluster on all clean data in range.
	b := &bundle.Bundle{Tree: ds.Tree, Assign: cl.Assign}
	var allScored []detect.ScoredEvent
	endTrain := ds.MonthStart(months)
	for ci := 0; ci < cl.K; ci++ {
		var streams [][]features.Event
		for _, v := range cl.Members(ci) {
			if ev := ds.CleanEvents(v, ds.MonthStart(0), endTrain, cfg.TrainExclusion); len(ev) > 0 {
				streams = append(streams, ev)
			}
		}
		// Ship the cluster's training-time template distribution so the
		// online lifecycle can measure live drift against it (§3.3's
		// cosine signal) instead of bootstrapping a baseline from the
		// first traffic it happens to see.
		hist := make(map[int]float64)
		for _, s := range streams {
			for _, e := range s {
				hist[e.Template]++
			}
		}
		b.TrainHist = append(b.TrainHist, hist)
		lcfg := cfg.LSTM
		lcfg.Seed += int64(ci) * 101
		det := detect.NewLSTMDetector(lcfg)
		det.SetMetrics(reg, fmt.Sprintf("cluster%d_", ci))
		if len(streams) == 0 {
			log.Warn("no clean training data, skipping cluster", "cluster", ci)
			b.Detectors = append(b.Detectors, det)
			continue
		}
		t0 := time.Now()
		if err := det.Train(streams); err != nil {
			return fmt.Errorf("training cluster %d: %w", ci, err)
		}
		trainSeconds.ObserveDuration(t0)
		clustersTrained.Inc()
		snap := reg.Snapshot()
		log.Info("trained cluster", "cluster", ci, "streams", len(streams),
			"elapsed", time.Since(t0).Round(time.Millisecond),
			"epochs", snap.Counters[fmt.Sprintf("cluster%d_lstm_epochs_total", ci)],
			"loss", snap.Gauges[fmt.Sprintf("cluster%d_lstm_epoch_loss", ci)],
			"tokens_per_sec", snap.Gauges[fmt.Sprintf("cluster%d_lstm_tokens_per_sec", ci)],
			"oversample_rounds", snap.Counters[fmt.Sprintf("cluster%d_lstm_oversample_rounds_total", ci)])
		b.Detectors = append(b.Detectors, det)
		// Score the training range to place the operating threshold.
		for _, v := range cl.Members(ci) {
			allScored = append(allScored, det.Score(v, ds.RangeEvents(v, ds.MonthStart(0), endTrain))...)
		}
	}

	// Operating threshold: best F over the training range when tickets
	// are available, else a high quantile of the score distribution.
	if len(tickets) > 0 && len(allScored) > 0 {
		thrs := detect.ThresholdSweep(allScored, cfg.SweepPoints)
		curve := eval.PRCurve(allScored, tickets, thrs, cfg.Eval, ds.MonthStart(0), endTrain)
		best := eval.BestF(curve)
		b.Threshold = best.Threshold
		log.Info("operating threshold from training-range best F", "threshold", best.Threshold,
			"precision", best.Precision, "recall", best.Recall, "f", best.F)
	} else if len(allScored) > 0 {
		b.Threshold = detect.ScoreQuantile(allScored, 0.999)
		log.Info("operating threshold from score quantile", "threshold", b.Threshold, "quantile", 0.999)
	}

	// Atomic save: a crash mid-write must never leave a truncated bundle
	// where a monitor's hot-reload would pick it up.
	if err := b.SaveFile(out); err != nil {
		return err
	}
	log.Info("wrote bundle", "path", out)
	return nil
}
