package nfvpredict

import (
	"testing"
	"time"

	"nfvpredict/internal/detect"
	"nfvpredict/internal/features"
	"nfvpredict/internal/pipeline"
)

// calibrationFixture trains twin detectors (identical deterministic
// weights) on month 0 of a simulated fleet and returns them with the
// month-1 per-vPE scoring streams — the seed scenario the serving-path
// calibration gates run on.
func calibrationFixture(t *testing.T) (ref, quant *detect.LSTMDetector, streams [][]features.Event, threshold float64) {
	t.Helper()
	simCfg := SmallSimConfig()
	simCfg.NumVPEs = 6
	simCfg.Months = 2
	simCfg.UpdateMonth = -1
	trace, err := Simulate(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := pipeline.BuildDataset(trace, simCfg.Start, simCfg.Months)
	var train [][]features.Event
	for _, v := range ds.VPEs {
		if ev := ds.CleanEvents(v, ds.MonthStart(0), ds.MonthStart(1), 72*time.Hour); len(ev) > 0 {
			train = append(train, ev)
		}
	}
	for _, v := range ds.VPEs {
		if ev := ds.RangeEvents(v, ds.MonthStart(1), ds.MonthStart(2)); len(ev) > 0 {
			streams = append(streams, ev)
		}
	}
	mk := func() *detect.LSTMDetector {
		cfg := detect.DefaultLSTMConfig()
		cfg.Hidden = []int{24}
		cfg.Epochs = 2
		cfg.OverSampleRounds = 0
		cfg.MaxWindowsPerEpoch = 600
		d := detect.NewLSTMDetector(cfg)
		if err := d.Train(train); err != nil {
			t.Fatal(err)
		}
		return d
	}
	return mk(), mk(), streams, 6
}

// verdicts thresholds every scored event, returning one bool per message.
func verdicts(d *detect.LSTMDetector, streams [][]features.Event, threshold float64) []bool {
	var out []bool
	for i, s := range streams {
		for _, se := range d.Score("vpe"+string(rune('a'+i)), s) {
			out = append(out, se.Score > threshold)
		}
	}
	return out
}

// TestCalibrationF32SeedScenario is the serving-path calibration gate on
// the simulator's seed scenario: the f32 engine must reproduce the f64
// anomaly-verdict sequence exactly — verdicts drive the §5.1 clustering
// rule, so identical verdicts mean an identical warning sequence.
func TestCalibrationF32SeedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed calibration in -short mode")
	}
	ref, quant, streams, threshold := calibrationFixture(t)
	quant.SetPrecision(detect.PrecisionF32)
	vRef := verdicts(ref, streams, threshold)
	vQ := verdicts(quant, streams, threshold)
	if len(vRef) != len(vQ) {
		t.Fatalf("verdict counts diverged: %d vs %d", len(vRef), len(vQ))
	}
	var nRef int
	for i := range vRef {
		if vRef[i] {
			nRef++
		}
		if vRef[i] != vQ[i] {
			t.Fatalf("verdict %d flipped under f32 (f64=%v)", i, vRef[i])
		}
	}
	if nRef == 0 {
		t.Fatal("scenario produced no anomalies — calibration vacuous")
	}
	t.Logf("f32 parity over %d verdicts (%d anomalous)", len(vRef), nRef)
}

// TestCalibrationInt8SeedScenario bounds the int8 engine's false-alarm
// drift on the same scenario: the verdict-rate delta must fit the
// lifecycle promotion-gate budget (0.02).
func TestCalibrationInt8SeedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed calibration in -short mode")
	}
	ref, quant, streams, threshold := calibrationFixture(t)
	quant.SetPrecision(detect.PrecisionInt8)
	vRef := verdicts(ref, streams, threshold)
	vQ := verdicts(quant, streams, threshold)
	if len(vRef) != len(vQ) {
		t.Fatalf("verdict counts diverged: %d vs %d", len(vRef), len(vQ))
	}
	var nRef, nQ, flips int
	for i := range vRef {
		if vRef[i] {
			nRef++
		}
		if vQ[i] {
			nQ++
		}
		if vRef[i] != vQ[i] {
			flips++
		}
	}
	farRef := float64(nRef) / float64(len(vRef))
	farQ := float64(nQ) / float64(len(vQ))
	delta := farQ - farRef
	if delta < 0 {
		delta = -delta
	}
	const gateBudget = 0.02
	if delta > gateBudget {
		t.Fatalf("int8 verdict-rate delta %.4f exceeds gate budget %.2f (f64 %.4f int8 %.4f, %d flips)",
			delta, gateBudget, farRef, farQ, flips)
	}
	t.Logf("int8 rates: f64=%.4f int8=%.4f delta=%.4f flips=%d/%d", farRef, farQ, delta, flips, len(vRef))
}
